(* See synth.mli for the contract.  This module is the one place that
   names the concrete backends; everything above it (pipeline, CLIs,
   bench) speaks only registry entries and chains. *)

type capability = Rz_only | Full_u3

type target = Rz of float | Unitary of Mat2.t

let target_mat2 = function Rz theta -> Mat2.rz theta | Unitary m -> m

(* ------------------------------------------------------------------ *)
(* Per-call configuration                                              *)
(* ------------------------------------------------------------------ *)

let default_budgets = [ 10; 10; 8 ]

type config = {
  epsilon : float;
  deadline : Obs.Deadline.t;
  gate_set : Gateset.t;
  trasyn : Trasyn.config;
  trasyn_budgets : int list;
  trasyn_attempts : int;
  gs_max_extra_n : int option;
  gs_candidates_per_n : int option;
  synthetiq_seconds : float;
  synthetiq_seed : int;
  sk_base_t : int option;
  sk_max_depth : int option;
}

let config ?(deadline = Obs.Deadline.none) ?(gate_set = Gateset.default)
    ?(trasyn = Trasyn.default_config) ?(budgets = default_budgets) ~epsilon () =
  {
    epsilon;
    deadline;
    gate_set;
    trasyn;
    trasyn_budgets = budgets;
    trasyn_attempts = 1;
    gs_max_extra_n = None;
    gs_candidates_per_n = None;
    synthetiq_seconds = 10.0;
    synthetiq_seed = 0;
    sk_base_t = None;
    sk_max_depth = None;
  }

let gate_set_name cfg = cfg.gate_set.Gateset.name

(* ------------------------------------------------------------------ *)
(* The backend signature and the four adapters                         *)
(* ------------------------------------------------------------------ *)

module type BACKEND = sig
  val name : string
  val capability : capability

  val supports_gate_set : string -> bool
  (* Which alphabets the backend can emit words over.  Exact-arithmetic
     backends (gridsynth, synthetiq, sk) are Clifford+T-native; trasyn
     samples whatever step-0 table the gate set resolves to. *)

  val synthesize : target -> config -> (Ctgate.t list * float, Robust.failure) result
end

type backend = (module BACKEND)

let backend_name (b : backend) =
  let module B = (val b) in
  B.name

let backend_capability (b : backend) =
  let module B = (val b) in
  B.capability

let backend_supports (b : backend) gate_set =
  let module B = (val b) in
  B.supports_gate_set gate_set

(* Convert the backends' native exception vocabulary to the structured
   taxonomy right at the adapter boundary, mirroring what run_chain
   catches for raw rungs. *)
let wrap name f =
  match f () with
  | word, distance -> Ok (word, distance)
  | exception Robust.Failure_exn fl -> Error fl
  | exception Gridsynth.Synthesis_failed msg -> Error (Robust.Backend_error msg)
  | exception Invalid_argument msg -> Error (Robust.Backend_error (name ^ ": " ^ msg))
  | exception Failure msg -> Error (Robust.Backend_error (name ^ ": " ^ msg))

module Trasyn_backend : BACKEND = struct
  let name = "trasyn"

  let capability = Full_u3

  (* Any alphabet with a step-0 table: [Ma_table.get_for] raises its
     structured error (converted by [wrap]) when none was provided. *)
  let supports_gate_set _ = true

  let synthesize target cfg =
    let m = target_mat2 target in
    wrap name (fun () ->
        let tconf = { cfg.trasyn with Trasyn.gate_set = gate_set_name cfg } in
        let r =
          Trasyn.to_error ~config:tconf ~attempts:cfg.trasyn_attempts ~selection:`Min_t
            ~t_slack:2 ~target:m ~budgets:cfg.trasyn_budgets ~epsilon:cfg.epsilon ()
        in
        (r.Trasyn.seq, r.Trasyn.distance))
end

module Gridsynth_backend : BACKEND = struct
  let name = "gridsynth"

  (* Native domain is a single Rz word; [Unitary] targets still work,
     routed through the Eq. (1) Euler-angle decomposition (three Rz
     syntheses at ε/3) inside [Gridsynth.u3]. *)
  let capability = Rz_only

  let supports_gate_set = String.equal "cliffordt"

  let synthesize target cfg =
    wrap name (fun () ->
        match target with
        | Rz theta ->
            let r =
              Gridsynth.rz ?max_extra_n:cfg.gs_max_extra_n
                ?candidates_per_n:cfg.gs_candidates_per_n ~deadline:cfg.deadline ~theta
                ~epsilon:cfg.epsilon ()
            in
            (r.Gridsynth.seq, r.Gridsynth.distance)
        | Unitary m ->
            let theta, phi, lam = Mat2.to_u3_angles m in
            let r =
              Gridsynth.u3 ?max_extra_n:cfg.gs_max_extra_n ~deadline:cfg.deadline ~theta ~phi
                ~lam ~epsilon:cfg.epsilon ()
            in
            (r.Gridsynth.seq, r.Gridsynth.distance))
end

module Synthetiq_backend : BACKEND = struct
  let name = "synthetiq"

  let capability = Full_u3

  let supports_gate_set = String.equal "cliffordt"

  let synthesize target cfg =
    let m = target_mat2 target in
    wrap name (fun () ->
        let time_limit =
          Float.min cfg.synthetiq_seconds (Obs.Deadline.remaining_s cfg.deadline)
        in
        let r =
          Synthetiq.synthesize ~seed:cfg.synthetiq_seed ~time_limit ~target:m
            ~epsilon:cfg.epsilon ()
        in
        match r.Synthetiq.seq with
        | Some seq -> (seq, r.Synthetiq.distance)
        | None -> Robust.fail Robust.Budget_exhausted)
end

module Sk_backend : BACKEND = struct
  let name = "sk"

  let capability = Full_u3

  let supports_gate_set = String.equal "cliffordt"

  let synthesize target cfg =
    let m = target_mat2 target in
    wrap name (fun () ->
        let r =
          Solovay_kitaev.synthesize_to ?base_t:cfg.sk_base_t ?max_depth:cfg.sk_max_depth
            ~epsilon:cfg.epsilon m
        in
        (r.Solovay_kitaev.seq, r.Solovay_kitaev.distance))
end

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)
(* ------------------------------------------------------------------ *)

let reg_lock = Mutex.create ()

let reg : (string * backend) list ref = ref []

let locked f =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

let register (b : backend) =
  let name = backend_name b in
  locked (fun () ->
      if List.mem_assoc name !reg then
        invalid_arg ("Synth.register: duplicate backend " ^ name)
      else reg := !reg @ [ (name, b) ])

let find name = locked (fun () -> List.assoc_opt name !reg)

let find_exn name =
  match find name with
  | Some b -> b
  | None ->
      let known = locked (fun () -> String.concat ", " (List.map fst !reg)) in
      invalid_arg (Printf.sprintf "Synth.find_exn: unknown backend %S (known: %s)" name known)

let all () = locked (fun () -> List.map snd !reg)

let backends_for gate_set = List.filter (fun b -> backend_supports b gate_set) (all ())

let () =
  List.iter register
    [
      (module Trasyn_backend : BACKEND);
      (module Gridsynth_backend : BACKEND);
      (module Synthetiq_backend : BACKEND);
      (module Sk_backend : BACKEND);
    ]

(* ------------------------------------------------------------------ *)
(* Chains: fallback ladders as data                                    *)
(* ------------------------------------------------------------------ *)

type rung_spec = {
  rung_name : string;
  backend : backend;
  eps_scale : float;
  eps_floor : float;
  tweak : config -> config;
}

let rung ?name ?(eps_scale = 1.0) ?(eps_floor = 0.0) ?(tweak = Fun.id) backend =
  let rung_name = match name with Some n -> n | None -> backend_name backend in
  { rung_name; backend; eps_scale; eps_floor; tweak }

let chain_id chain = String.concat "," (List.map (fun s -> s.rung_name) chain)

(* Below ~0.45 a word is meaningfully closer to the target than a
   random unitary; the SK last resort accepts anything under it (and
   reports the achieved distance) rather than failing the rotation. *)
let sk_floor = 0.45

(* The sampled search is reliable down to ~1e-2 at fallback budgets;
   asking it for less just burns its budget before SK runs. *)
let trasyn_floor = 0.01

let trasyn_backend = find_exn "trasyn"

let gridsynth_backend = find_exn "gridsynth"

let sk_rung = rung ~eps_floor:sk_floor (find_exn "sk")

let u3_chain =
  [
    rung trasyn_backend;
    (* Reseed and double the sample budget: a miss at k samples is
       often a hit at 2k with a fresh stream. *)
    rung ~name:"trasyn.retry"
      ~tweak:(fun c ->
        {
          c with
          trasyn =
            {
              c.trasyn with
              Trasyn.seed = c.trasyn.Trasyn.seed lxor 0x2b5d;
              samples = c.trasyn.Trasyn.samples * 2;
            };
          trasyn_attempts = 2;
        })
      trasyn_backend;
    rung gridsynth_backend;
    sk_rung;
  ]

let rz_chain ?(gs_scale = 2.0) () =
  [
    rung gridsynth_backend;
    rung ~name:"gridsynth.retry" ~eps_scale:gs_scale
      ~tweak:(fun c -> { c with gs_max_extra_n = Some 60; gs_candidates_per_n = Some 128 })
      gridsynth_backend;
    rung ~eps_floor:trasyn_floor
      ~tweak:(fun c ->
        {
          c with
          trasyn = Trasyn.default_config;
          trasyn_budgets = default_budgets;
          trasyn_attempts = 2;
        })
      trasyn_backend;
    sk_rung;
  ]

let parse_chain s =
  let names =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun n -> n <> "")
  in
  if names = [] then Error "empty backend chain"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match find n with
          | Some b ->
              (* A user-specified sk entry keeps its relaxed floor so
                 hand-built chains still land like the standard ones. *)
              let spec = if n = "sk" then rung ~eps_floor:sk_floor b else rung b in
              go (spec :: acc) rest
          | None ->
              Error
                (Printf.sprintf "unknown backend %S (known: %s)" n
                   (String.concat ", " (List.map backend_name (all ())))))
    in
    go [] names

(* ------------------------------------------------------------------ *)
(* Running a chain                                                     *)
(* ------------------------------------------------------------------ *)

let rung_of_spec ~config:base ~target spec : Robust.rung =
  let eps = Float.max (base.epsilon *. spec.eps_scale) spec.eps_floor in
  {
    Robust.name = spec.rung_name;
    rung_epsilon = eps;
    run =
      (fun deadline ->
        (* The chain runner owns deadline composition; the adapter just
           honours whatever it is handed. *)
        let cfg = spec.tweak { base with epsilon = eps; deadline } in
        let module B = (val spec.backend) in
        match B.synthesize target cfg with
        | Ok (word, distance) -> (word, distance)
        | Error f -> Robust.fail f);
  }

(* Canonical target id for provenance: enough digits that two angles
   the pipeline considers distinct never collide in a ledger. *)
let target_id = function
  | Rz theta -> Printf.sprintf "rz(%.10f)" theta
  | Unitary m ->
      let theta, phi, lam = Mat2.to_u3_angles m in
      Printf.sprintf "u3(%.10f,%.10f,%.10f)" theta phi lam

let failure_tag : Robust.failure -> string = function
  | Robust.Timeout -> "timeout"
  | Robust.Budget_exhausted -> "budget_exhausted"
  | Robust.Verification_failed -> "verification_failed"
  | Robust.Backend_error _ -> "backend_error"

let c_rotations = Obs.counter "synth.rotations"
let c_store_hit = Obs.counter "synth.store.hit"
let c_store_miss = Obs.counter "synth.store.miss"

(* The process-wide persistent store, when a CLI armed one.  Guarded by
   a mutex: [run_chain] runs on planner worker domains.  (The store's
   own operations are internally locked; this mutex only protects the
   option cell.) *)
let store_lock = Mutex.create ()
let store_ref : Store.t option ref = ref None

let set_store s =
  Mutex.lock store_lock;
  store_ref := s;
  Mutex.unlock store_lock

let store () =
  Mutex.lock store_lock;
  let s = !store_ref in
  Mutex.unlock store_lock;
  s

let store_target = function
  | Rz theta -> Store.Rz theta
  | Unitary m ->
      let theta, phi, lam = Mat2.to_u3_angles m in
      Store.U3 (theta, phi, lam)

let run_chain_sourced ?deadline ~config:cfg chain target =
  let deadline =
    match deadline with
    | Some d -> Obs.Deadline.earliest d cfg.deadline
    | None -> cfg.deadline
  in
  Obs.incr c_rotations;
  let t0 = Obs.Clock.elapsed_s () in
  let gs_name = gate_set_name cfg in
  (* Consult the persistent store first: a stored word whose verified
     distance is ≤ ε is a valid answer for this request (ε-monotonic
     reuse), already re-verified by the store's read path.  The lookup
     is keyed by the active gate set, so an alphabet never serves
     another alphabet's words. *)
  let store_hit =
    match store () with
    | None -> None
    | Some st ->
        (* Under its own span so a request's waterfall shows the store
           consult (and its outcome) as a step distinct from synthesis. *)
        Obs.span "synth.store.lookup" (fun () ->
            let hit =
              Store.lookup st ~gate_set:gs_name ~epsilon:cfg.epsilon (store_target target)
            in
            Obs.incr (match hit with Some _ -> c_store_hit | None -> c_store_miss);
            Obs.set_span_attr "outcome" (match hit with Some _ -> "hit" | None -> "miss");
            hit)
  in
  match store_hit with
  | Some (e : Store.entry) ->
      if Ledger.enabled () then
        Ledger.record
          {
            Ledger.target = target_id target;
            gate_set = gs_name;
            chain = chain_id chain;
            eps_req = cfg.epsilon;
            rung_eps = cfg.epsilon;
            distance = e.Store.distance;
            backend = e.Store.backend;
            fallbacks = 0;
            attempts = 0;
            t_count = e.Store.t_count;
            word_len = List.length e.Store.word;
            wall_s = Obs.Clock.elapsed_s () -. t0;
            degraded = false;
            cached = true;
            source = "store";
            ok = true;
            failure = None;
            request_id = "";
          };
      Ok
        ( {
            Robust.word = e.Store.word;
            distance = e.Store.distance;
            backend = e.Store.backend;
            fallbacks = 0;
            rung_epsilon = cfg.epsilon;
          },
          `Store )
  | None ->
  (* Rungs whose backend cannot emit this alphabet are skipped, so a
     non-Clifford+T request falls through gridsynth/sk straight to the
     table-driven backends instead of getting a wrong-alphabet word. *)
  let usable = List.filter (fun spec -> backend_supports spec.backend gs_name) chain in
  let result =
    if usable = [] then
      Error
        (Robust.Backend_error
           (Printf.sprintf "no backend in chain %S supports gate set %S" (chain_id chain)
              gs_name))
    else
      Robust.run_chain ~deadline ~target:(target_mat2 target)
        (List.map (rung_of_spec ~config:cfg ~target) usable)
  in
  (* One fresh provenance record per chain execution, success or
     failure; the pipelines add cached-replay records for occurrences
     served by dedup or the memo caches. *)
  if Ledger.enabled () then begin
    let wall_s = Obs.Clock.elapsed_s () -. t0 in
    let base =
      {
        Ledger.target = target_id target;
        gate_set = gs_name;
        chain = chain_id chain;
        eps_req = cfg.epsilon;
        rung_eps = nan;
        distance = nan;
        backend = "failed";
        fallbacks = max 0 (List.length usable - 1);
        attempts = List.length usable;
        t_count = 0;
        word_len = 0;
        wall_s;
        degraded = true;
        cached = false;
        source = "fresh";
        ok = false;
        failure = None;
        request_id = "";
      }
    in
    Ledger.record
      (match result with
      | Ok (a : Robust.attempt) ->
          {
            base with
            Ledger.rung_eps = a.Robust.rung_epsilon;
            distance = a.Robust.distance;
            backend = a.Robust.backend;
            fallbacks = a.Robust.fallbacks;
            attempts = a.Robust.fallbacks + 1;
            t_count = Ctgate.t_count a.Robust.word;
            word_len = List.length a.Robust.word;
            degraded = a.Robust.fallbacks > 0 || a.Robust.distance > cfg.epsilon;
            ok = true;
          }
      | Error f -> { base with Ledger.failure = Some (failure_tag f) })
  end;
  (* A freshly synthesized, guard-verified word is worth keeping — under
     the alphabet that produced it, so cross-alphabet hits are
     impossible. *)
  (match (result, store ()) with
  | Ok (a : Robust.attempt), Some st when not (Store.readonly st) ->
      Store.put st
        {
          Store.gate_set = gs_name;
          target = store_target target;
          eps_req = cfg.epsilon;
          distance = a.Robust.distance;
          word = a.Robust.word;
          t_count = Ctgate.t_count a.Robust.word;
          backend = a.Robust.backend;
          chain = chain_id chain;
        }
  | _ -> ());
  Result.map (fun a -> (a, `Fresh)) result

let run_chain ?deadline ~config chain target =
  Result.map fst (run_chain_sourced ?deadline ~config chain target)

let synthesize_u3 ?deadline ?(config = Trasyn.default_config) ?(budgets = default_budgets)
    ~epsilon target =
  let cfg =
    {
      epsilon;
      deadline = Obs.Deadline.none;
      gate_set = Gateset.default;
      trasyn = config;
      trasyn_budgets = budgets;
      trasyn_attempts = 1;
      gs_max_extra_n = None;
      gs_candidates_per_n = None;
      synthetiq_seconds = 10.0;
      synthetiq_seed = 0;
      sk_base_t = None;
      sk_max_depth = None;
    }
  in
  run_chain ?deadline ~config:cfg u3_chain (Unitary target)

let synthesize_rz ?deadline ?gs_scale ~epsilon theta =
  run_chain ?deadline ~config:(config ~epsilon ()) (rz_chain ?gs_scale ()) (Rz theta)
