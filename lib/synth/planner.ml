(* See planner.mli.  The planner is deliberately generic over the job
   payload and result: the pipeline hands it canonicalized rotation
   keys and a Synth chain runner, but tests drive it with stubs. *)

let c_jobs = Obs.counter "obs.planner.jobs"
let c_dedup = Obs.counter "obs.planner.dedup_hits"
let c_domains = Obs.counter "obs.planner.domains"

type 'a job = { key : string; target : 'a }

type 'a plan = { jobs : 'a job array; occurrences : int; dedup_hits : int }

let plan occs =
  let seen = Hashtbl.create 64 in
  let jobs =
    List.filter_map
      (fun (key, target) ->
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some { key; target }
        end)
      occs
    |> Array.of_list
  in
  let occurrences = List.length occs in
  { jobs; occurrences; dedup_hits = occurrences - Array.length jobs }

(* Synthesis jobs allocate heavily, and every minor collection is a
   stop-all-domains barrier; at the default minor-heap size the barrier
   fires so often that worker domains spend most of their time
   synchronizing (measured ~4x slowdown with 4 domains on one core).
   While a multi-domain plan runs, give every domain a roomier minor
   heap — the parent around the whole execution, each worker for
   itself on startup — and restore the caller's setting afterwards. *)
let worker_minor_heap_words = 4 * 1024 * 1024

let enlarge_minor_heap () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < worker_minor_heap_words then
    Gc.set { g with Gc.minor_heap_size = worker_minor_heap_words };
  g

let with_parent_heap domains f =
  if domains <= 1 then f ()
  else begin
    let g = enlarge_minor_heap () in
    Fun.protect ~finally:(fun () -> Gc.set g) f
  end

let execute ?jobs:requested ?(deadline = Obs.Deadline.none) ?job_budget ?ctx ~run plan =
  let requested =
    match requested with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  let n_jobs = Array.length plan.jobs in
  let domains = Int.max 1 (Int.min requested n_jobs) in
  Obs.incr ~by:n_jobs c_jobs;
  Obs.incr ~by:plan.dedup_hits c_dedup;
  Obs.incr ~by:domains c_domains;
  let results : (string, _ ) Hashtbl.t = Hashtbl.create (Int.max 16 n_jobs) in
  let results_lock = Mutex.create () in
  let next = Atomic.make 0 in
  (* Work-stealing over a shared index: results land keyed by job key,
     so the merged table is identical whatever the domain count or
     scheduling order — the determinism the --jobs gate tests. *)
  (* [idx] numbers the domains of this execution (0 = calling domain).
     Each accumulates busy-seconds and a jobs counter under
     obs.planner.domain.<idx>.*, the series the live Metrics sampler
     differentiates into per-domain utilization. *)
  let worker idx parent () =
    if domains > 1 then ignore (enlarge_minor_heap ());
    let g_busy = Obs.gauge (Printf.sprintf "obs.planner.domain.%d.busy_s" idx) in
    let c_done = Obs.counter (Printf.sprintf "obs.planner.domain.%d.jobs" idx) in
    Obs.with_span_parent parent (fun () ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n_jobs then begin
            let job = plan.jobs.(i) in
            let jt0 = Obs.Clock.elapsed_s () in
            let jd =
              match job_budget with
              | None -> deadline
              | Some b -> Obs.Deadline.earliest deadline (Obs.Deadline.after b)
            in
            (* Re-establish the submitting request's context on this
               domain before the job span opens, so cross-domain spans
               (and fresh ledger records) carry the request id. *)
            let with_ctx k =
              match ctx with None -> k () | Some f -> Obs.with_request (f job.target) k
            in
            let res =
              with_ctx (fun () ->
                  Obs.span "planner.job" (fun () ->
                      match run ~deadline:jd job.target with
                      | Error _ as e ->
                          Obs.set_span_attr "backend" "failed";
                          e
                      | Ok _ as ok -> ok
                      | exception Robust.Failure_exn f ->
                          Obs.set_span_attr "backend" "failed";
                          Error f
                      | exception e ->
                          (* A worker domain must never die mid-plan: any
                             stray exception becomes a per-job failure. *)
                          Obs.set_span_attr "backend" "failed";
                          Error (Robust.Backend_error (Printexc.to_string e))))
            in
            Obs.add_gauge g_busy (Obs.Clock.elapsed_s () -. jt0);
            Obs.incr c_done;
            Mutex.lock results_lock;
            Hashtbl.replace results job.key res;
            Mutex.unlock results_lock;
            loop ()
          end
        in
        loop ())
  in
  Obs.span "planner.execute" (fun () ->
      let parent = Obs.current_span_id () in
      with_parent_heap domains (fun () ->
          let helpers =
            List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1) parent))
          in
          worker 0 parent ();
          List.iter Domain.join helpers));
  results
