(** The tensor-network engine of TRASYN (steps 1 and 2).

    The exponentially large tensor of trace values
    Tr(U†·M₁[s₁]⋯M_l[s_l]) is represented as an MPS with bond dimension
    ≤ 4; a right-to-left orthogonalization sweep brings it to canonical
    form, after which index tuples (gate sequences) are sampled from
    p ∝ |trace|² via the chain rule, each conditional computed locally.
    Every sample's trace value falls out of the final contraction for
    free — the "error-aware" property the paper leans on.

    All hot-path kernels (construction fills, the LQ sweep, the batched
    sampler) operate directly on the flat float planes with small
    preallocated scratch: no per-element boxing, per-sample allocation
    is O(k) words total. *)

type site = {
  dl : int;  (** left bond dimension *)
  dr : int;  (** right bond dimension *)
  n : int;  (** physical dimension (number of Clifford+T operators) *)
  re : float array;
  im : float array;
  bank : Sitebank.t;
}

type t = { sites : site array; target : Mat2.t }

type sample = {
  indices : int array;  (** one physical index per site *)
  amplitude : Cplx.t;  (** Tr(U†·∏ M[sᵢ]) *)
  multiplicity : int;  (** how many of the k draws landed here *)
}

val site_get : site -> int -> int -> int -> Cplx.t
(** [site_get s phys a b] — tensor entry at physical index [phys], left
    bond [a], right bond [b]. *)

val build : target:Mat2.t -> Sitebank.t array -> t
(** Construct the MPS for a target and per-site operator banks;
    the target's second matrix dimension rides along a δ-line (the
    paper's "loop cut").  @raise Invalid_argument on zero sites. *)

val trace_of_indices : t -> int array -> Cplx.t
(** Direct exact evaluation of one index tuple (tests, verification). *)

val canonicalize : t -> unit
(** Right-to-left LQ sweep; sites 1..l−1 become right-isometric.
    Mutates the site tensors in place — never call this on an MPS
    obtained from {!instantiate}, whose interior sites are shared. *)

val right_canonical_error : site -> float
(** ‖Σ_s A[s]A[s]† − I‖_F — zero (to float precision) after
    {!canonicalize}. *)

(** {1 Reusable canonicalized chains}

    Only the first site of the MPS depends on the target (it folds in
    U†); sites 2..l are [M⊗δ] tensors of the operator banks alone, and
    the right-to-left sweep reaches the first site last.  A {!chain}
    captures everything target-independent — banks, the canonicalized
    interior, and the boundary L factor from the sweep's final LQ — so
    synthesizing against a new target only fills one fresh first site
    and absorbs the saved boundary, instead of rebuilding and
    re-canonicalizing the whole chain.

    The interior sites are {e shared} between the chain and every MPS
    it instantiates: they are read-only after {!canonical_chain}
    returns (sampling and beam search only read site tensors), which is
    what makes one chain safe to reuse concurrently from many domains. *)

type chain = {
  banks : Sitebank.t array;
  interior : site array;  (** canonicalized sites 1..l−1; empty when l = 1 *)
  bl_re : float array;  (** boundary L from site 1's LQ (row-major, bl_d×bl_d) *)
  bl_im : float array;
  bl_d : int;  (** boundary dimension; 0 when l = 1 *)
}

val canonical_chain : Sitebank.t array -> chain
(** Build and canonicalize the target-independent part of the MPS once.
    @raise Invalid_argument on zero sites. *)

val instantiate : target:Mat2.t -> chain -> t
(** Graft a target-folded first site onto the shared interior.  The
    result is fully canonicalized (do {e not} call {!canonicalize} on
    it) and bit-identical to [build] + [canonicalize] on the same banks
    and target: both paths run the same fill, LQ, and absorb kernels on
    the same values in the same order. *)

(** {1 Sampling} *)

val default_rng_seed : int
(** Seed behind [sample]'s default rng: callers that do not pass [~rng]
    get reproducible draws. *)

val sample : ?rng:Random.State.t -> ?argmax_last:bool -> t -> k:int -> sample list
(** Draw [k] sequences from the Born distribution of the canonicalized
    MPS in one batched pass: all draws advance through the chain
    together, so per-level work scales with the number of distinct
    prefixes (≤ k), not with k·l.  With [argmax_last] (default), each
    distinct sampled prefix also contributes the best completion of the
    final site — the conditional weights there are exactly the
    per-sequence trace values and have already been computed.  Without
    [~rng], draws come from a fixed-seed state ({!default_rng_seed}). *)

val beam_search : t -> beam:int -> sample list
(** Deterministic alternative: keep the [beam] highest-weight partial
    sequences at every site (the greedy ablation). *)
