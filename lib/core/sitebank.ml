(** Per-site tensor data for TRASYN's MPS.

    A site's physical index ranges over all canonical Clifford+T
    operators within a T-count range (step 0's table), and each index
    carries its 2×2 matrix.  For the sampler's hot loop the matrices are
    stored as flat float arrays (row-major, 4 complex entries per
    index). *)

type t = {
  count : int;
  re : float array;  (** count × 4 *)
  im : float array;
  entries : Ma_table.entry array;  (** entry per physical index *)
  max_t : int;
}

let of_entries entries max_t =
  let count = Array.length entries in
  let re = Array.make (count * 4) 0.0 and im = Array.make (count * 4) 0.0 in
  Array.iteri
    (fun s (e : Ma_table.entry) ->
      let m = e.Ma_table.mat in
      let put j (z : Cplx.t) =
        re.((s * 4) + j) <- z.Cplx.re;
        im.((s * 4) + j) <- z.Cplx.im
      in
      put 0 m.Mat2.m00;
      put 1 m.Mat2.m01;
      put 2 m.Mat2.m10;
      put 3 m.Mat2.m11)
    entries;
  { count; re; im; entries; max_t }

(* A site covering T counts lo..hi of the given table. *)
let of_table table ~lo ~hi = of_entries (Ma_table.entries_in_range table ~lo ~hi) hi

(* One shared counter for all three accessors: they are the bank's only
   read path, so this is "how often did synthesis consult a sitebank".
   An atomic add is noise next to the float work per lookup. *)
let c_lookups = Obs.counter "sitebank.lookups"

let matrix bank s =
  Obs.incr c_lookups;
  bank.entries.(s).Ma_table.mat

let sequence bank s =
  Obs.incr c_lookups;
  bank.entries.(s).Ma_table.seq

let tcount bank s =
  Obs.incr c_lookups;
  bank.entries.(s).Ma_table.tcount
