(** The tensor-network engine of TRASYN (steps 1 and 2 of the paper).

    The trace values Tr(U†·M₁[s₁]·M₂[s₂]⋯M_l[s_l]) over all index
    choices form an exponentially large tensor; this module represents
    it as an MPS with bond dimension ≤ 4:

      site 1:  T₁[s]_(c,b)        = Σ_a conj(U_(a,b)) · M₁[s]_(a,c)
      site i:  T_i[s]_((c,b),(c',b')) = M_i[s]_(c,c') · δ_(b,b')
      site l:  T_l[s]_(c,b)       = M_l[s]_(c,b)

    (the δ-line carries the target's second matrix dimension from the
    end of the chain back to the beginning — the paper's "loop cut").
    A right-to-left orthogonalization sweep brings the MPS to canonical
    form, after which gate sequences are sampled from the chain rule
    p(s₁)p(s₂|s₁)… with each conditional computed locally, and every
    sample's trace value falls out of the final contraction for free.

    Everything on the hot path — construction, the LQ sweep, and the
    batched chain-rule sampler — works directly on the flat float
    planes with small preallocated scratch buffers: no [Cplx.t] is
    boxed per element access, so a synthesis attempt allocates O(k)
    words instead of O(k·l·n).

    The interior of the chain (every site but the first) never sees the
    target: {!canonical_chain} canonicalizes it once per operator-bank
    configuration, and {!instantiate} grafts a fresh target-folded first
    site onto the shared interior.  Sampling only reads site tensors, so
    one canonicalized interior can serve any number of targets — and any
    number of domains — concurrently. *)

type site = {
  dl : int;  (** left bond dimension *)
  dr : int;  (** right bond dimension *)
  n : int;  (** physical dimension = number of Clifford+T operators *)
  re : float array;  (** (s·dl + a)·dr + b, row-major per physical index *)
  im : float array;
  bank : Sitebank.t;
}

type t = { sites : site array; target : Mat2.t }

type sample = {
  indices : int array;  (** one physical index per site *)
  amplitude : Cplx.t;  (** Tr(U†·∏ M[sᵢ]) — the trace value *)
  multiplicity : int;  (** how many of the k draws landed here *)
}

let site_get s phys a b =
  let idx = (((phys * s.dl) + a) * s.dr) + b in
  { Cplx.re = s.re.(idx); im = s.im.(idx) }

let make_site bank dl dr =
  let n = bank.Sitebank.count in
  { dl; dr; n; re = Array.make (n * dl * dr) 0.0; im = Array.make (n * dl * dr) 0.0; bank }

(* ------------------------------------------------------------------ *)
(* Construction (unboxed per-site fills)                               *)
(* ------------------------------------------------------------------ *)

let c_sweeps = Obs.counter "mps.sweeps"
let c_samples = Obs.counter "mps.samples_drawn"

(* Bank entry (phys, row, col) lives at bank.re/im.(phys·4 + row·2 + col). *)

(* Single site (l = 1): the tensor is directly the trace values
   Σ_ab conj(U_ab)·M[s]_ab. *)
let fill_single_site (u : Mat2.t) bank =
  let s = make_site bank 1 1 in
  let bre = bank.Sitebank.re and bim = bank.Sitebank.im in
  let dot acc_re acc_im (z : Cplx.t) mre mim =
    (* conj(z)·m accumulated into (acc_re, acc_im) *)
    (acc_re +. (z.Cplx.re *. mre) +. (z.Cplx.im *. mim),
     acc_im +. (z.Cplx.re *. mim) -. (z.Cplx.im *. mre))
  in
  for phys = 0 to s.n - 1 do
    let b = phys * 4 in
    let re, im = dot 0.0 0.0 u.Mat2.m00 bre.(b) bim.(b) in
    let re, im = dot re im u.Mat2.m01 bre.(b + 1) bim.(b + 1) in
    let re, im = dot re im u.Mat2.m10 bre.(b + 2) bim.(b + 2) in
    let re, im = dot re im u.Mat2.m11 bre.(b + 3) bim.(b + 3) in
    s.re.(phys) <- re;
    s.im.(phys) <- im
  done;
  s

(* First site of a longer chain: fold in U† and open the composite
   bond (c,b): T[s]_(0,(c·2+b)) = Σ_a conj(U_(a,b))·M[s]_(a,c). *)
let fill_first_site (u : Mat2.t) bank =
  let s = make_site bank 1 4 in
  let bre = bank.Sitebank.re and bim = bank.Sitebank.im in
  let urow b = if b = 0 then (u.Mat2.m00, u.Mat2.m10) else (u.Mat2.m01, u.Mat2.m11) in
  for phys = 0 to s.n - 1 do
    let base = phys * 4 in
    for c = 0 to 1 do
      let m0re = bre.(base + c) and m0im = bim.(base + c) in
      let m1re = bre.(base + 2 + c) and m1im = bim.(base + 2 + c) in
      for b = 0 to 1 do
        let u0, u1 = urow b in
        (* conj(u0)·m0 + conj(u1)·m1 *)
        let re =
          (u0.Cplx.re *. m0re) +. (u0.Cplx.im *. m0im)
          +. (u1.Cplx.re *. m1re) +. (u1.Cplx.im *. m1im)
        in
        let im =
          (u0.Cplx.re *. m0im) -. (u0.Cplx.im *. m0re)
          +. (u1.Cplx.re *. m1im) -. (u1.Cplx.im *. m1re)
        in
        let j = (phys * 4) + (c * 2) + b in
        s.re.(j) <- re;
        s.im.(j) <- im
      done
    done
  done;
  s

(* Last site: close the composite bond.  T[s]_((c·2+b),0) = M[s]_(c,b),
   which in flat layout is exactly the bank's own storage. *)
let fill_last_site bank =
  let s = make_site bank 4 1 in
  Array.blit bank.Sitebank.re 0 s.re 0 (s.n * 4);
  Array.blit bank.Sitebank.im 0 s.im 0 (s.n * 4);
  s

(* Middle site: M ⊗ identity line. *)
let fill_middle_site bank =
  let s = make_site bank 4 4 in
  let bre = bank.Sitebank.re and bim = bank.Sitebank.im in
  for phys = 0 to s.n - 1 do
    let bankbase = phys * 4 and sitebase = phys * 16 in
    for c = 0 to 1 do
      for c' = 0 to 1 do
        let mre = bre.(bankbase + (c * 2) + c') and mim = bim.(bankbase + (c * 2) + c') in
        for b = 0 to 1 do
          let j = sitebase + (((c * 2) + b) * 4) + (c' * 2) + b in
          s.re.(j) <- mre;
          s.im.(j) <- mim
        done
      done
    done
  done;
  s

let build ~(target : Mat2.t) (banks : Sitebank.t array) =
  let l = Array.length banks in
  if l = 0 then invalid_arg "Mps.build: need at least one site";
  Obs.span "mps.build" @@ fun () ->
  let sites =
    Array.mapi
      (fun i bank ->
        if l = 1 then fill_single_site target bank
        else if i = 0 then fill_first_site target bank
        else if i = l - 1 then fill_last_site bank
        else fill_middle_site bank)
      banks
  in
  { sites; target }

(* Exact trace value for a full index assignment (direct evaluation,
   used by tests and to double-check samples). *)
let trace_of_indices t indices =
  let prod = ref Mat2.identity in
  Array.iteri
    (fun i s -> prod := Mat2.mul !prod (Sitebank.matrix t.sites.(i).bank s))
    indices;
  Mat2.trace (Mat2.mul (Mat2.adjoint t.target) !prod)

(* ------------------------------------------------------------------ *)
(* Canonicalization (right-to-left LQ sweep, unboxed)                  *)
(* ------------------------------------------------------------------ *)

(* In-place LQ of a site viewed as a (dl × n·dr) matrix: row-wise
   modified Gram–Schmidt with one reorthogonalization pass (mirroring
   [Svd.lq]'s numerics).  Leaves the orthonormal-row Q in the site and
   writes L (dl×dl, row-major, lower triangular) into the caller's
   scratch.  Zero rows (rank deficiency) keep a zero Q row, matching
   the previous behaviour. *)
let lq_site s l_re l_im =
  let dl = s.dl and dr = s.dr and n = s.n in
  let re = s.re and im = s.im in
  Array.fill l_re 0 (dl * dl) 0.0;
  Array.fill l_im 0 (dl * dl) 0.0;
  for i = 0 to dl - 1 do
    for _pass = 1 to 2 do
      for j = 0 to i - 1 do
        (* proj = ⟨q_j, a_i⟩ = Σ_k conj(q_j[k])·a_i[k] *)
        let pre = ref 0.0 and pim = ref 0.0 in
        for phys = 0 to n - 1 do
          let base = phys * dl * dr in
          let oj = base + (j * dr) and oi = base + (i * dr) in
          for b = 0 to dr - 1 do
            let qre = re.(oj + b) and qim = im.(oj + b) in
            let are = re.(oi + b) and aim = im.(oi + b) in
            pre := !pre +. (qre *. are) +. (qim *. aim);
            pim := !pim +. (qre *. aim) -. (qim *. are)
          done
        done;
        let pre = !pre and pim = !pim in
        l_re.((i * dl) + j) <- l_re.((i * dl) + j) +. pre;
        l_im.((i * dl) + j) <- l_im.((i * dl) + j) +. pim;
        (* a_i ← a_i − proj·q_j *)
        for phys = 0 to n - 1 do
          let base = phys * dl * dr in
          let oj = base + (j * dr) and oi = base + (i * dr) in
          for b = 0 to dr - 1 do
            let qre = re.(oj + b) and qim = im.(oj + b) in
            re.(oi + b) <- re.(oi + b) -. ((pre *. qre) -. (pim *. qim));
            im.(oi + b) <- im.(oi + b) -. ((pre *. qim) +. (pim *. qre))
          done
        done
      done
    done;
    let n2 = ref 0.0 in
    for phys = 0 to n - 1 do
      let oi = (phys * dl * dr) + (i * dr) in
      for b = 0 to dr - 1 do
        n2 := !n2 +. (re.(oi + b) *. re.(oi + b)) +. (im.(oi + b) *. im.(oi + b))
      done
    done;
    let nrm = Float.sqrt !n2 in
    l_re.((i * dl) + i) <- nrm;
    if nrm > 1e-14 then begin
      let inv = 1.0 /. nrm in
      for phys = 0 to n - 1 do
        let oi = (phys * dl * dr) + (i * dr) in
        for b = 0 to dr - 1 do
          re.(oi + b) <- re.(oi + b) *. inv;
          im.(oi + b) <- im.(oi + b) *. inv
        done
      done
    end
  done

(* Contract a (dr × dr) matrix into the right bond of a site:
   A[s]_(a,b) ← Σ_c A[s]_(a,c) · L_(c,b).  [ld] is L's row stride. *)
let absorb_right s ~ld l_re l_im =
  let dl = s.dl and dr = s.dr in
  let re = s.re and im = s.im in
  let row_re = Array.make dr 0.0 and row_im = Array.make dr 0.0 in
  for phys = 0 to s.n - 1 do
    for a = 0 to dl - 1 do
      let base = (((phys * dl) + a) * dr) in
      Array.blit re base row_re 0 dr;
      Array.blit im base row_im 0 dr;
      for b = 0 to dr - 1 do
        let acc_re = ref 0.0 and acc_im = ref 0.0 in
        for c = 0 to dr - 1 do
          let lre = l_re.((c * ld) + b) and lim = l_im.((c * ld) + b) in
          acc_re := !acc_re +. (row_re.(c) *. lre) -. (row_im.(c) *. lim);
          acc_im := !acc_im +. (row_re.(c) *. lim) +. (row_im.(c) *. lre)
        done;
        re.(base + b) <- !acc_re;
        im.(base + b) <- !acc_im
      done
    done
  done

(* Bring sites 1..l−1 to right-canonical form; site 0 absorbs the norm. *)
let canonicalize t =
  Obs.span "mps.canonicalize" @@ fun () ->
  let l = Array.length t.sites in
  Obs.incr ~by:(max 0 (l - 1)) c_sweeps;
  let l_re = Array.make 16 0.0 and l_im = Array.make 16 0.0 in
  for i = l - 1 downto 1 do
    let s = t.sites.(i) in
    lq_site s l_re l_im;
    absorb_right t.sites.(i - 1) ~ld:s.dl l_re l_im
  done

(* Canonical-form check: Σ_s A[s]·A[s]† = identity on the left bond. *)
let right_canonical_error s =
  let acc = Cmatrix.create s.dl s.dl in
  for phys = 0 to s.n - 1 do
    for a = 0 to s.dl - 1 do
      for a' = 0 to s.dl - 1 do
        let sum = ref (Cmatrix.get acc a a') in
        for b = 0 to s.dr - 1 do
          sum := Cplx.add !sum (Cplx.mul (site_get s phys a b) (Cplx.conj (site_get s phys a' b)))
        done;
        Cmatrix.set acc a a' !sum
      done
    done
  done;
  Cmatrix.frobenius_norm (Cmatrix.sub acc (Cmatrix.identity s.dl))

(* ------------------------------------------------------------------ *)
(* Reusable canonicalized chains                                       *)
(* ------------------------------------------------------------------ *)

type chain = {
  banks : Sitebank.t array;
  interior : site array;  (** canonicalized sites 1..l−1; [[||]] when l = 1 *)
  bl_re : float array;  (** boundary L from site 1's LQ, row-major bl_d×bl_d *)
  bl_im : float array;
  bl_d : int;  (** 0 when l = 1 (nothing to absorb) *)
}

let canonical_chain (banks : Sitebank.t array) =
  let l = Array.length banks in
  if l = 0 then invalid_arg "Mps.canonical_chain: need at least one site";
  Obs.span "mps.chain_build" @@ fun () ->
  if l = 1 then { banks; interior = [||]; bl_re = [||]; bl_im = [||]; bl_d = 0 }
  else begin
    let interior =
      Array.init (l - 1) (fun j ->
          let i = j + 1 in
          if i = l - 1 then fill_last_site banks.(i) else fill_middle_site banks.(i))
    in
    (* Same sweep as [canonicalize], stopping short of site 0: the
       boundary L that would be absorbed into the (target-dependent)
       first site is kept for {!instantiate}. *)
    Obs.incr ~by:(l - 1) c_sweeps;
    let l_re = Array.make 16 0.0 and l_im = Array.make 16 0.0 in
    for i = l - 1 downto 2 do
      let s = interior.(i - 1) in
      lq_site s l_re l_im;
      absorb_right interior.(i - 2) ~ld:s.dl l_re l_im
    done;
    let s1 = interior.(0) in
    lq_site s1 l_re l_im;
    let d = s1.dl in
    {
      banks;
      interior;
      bl_re = Array.sub l_re 0 (d * d);
      bl_im = Array.sub l_im 0 (d * d);
      bl_d = d;
    }
  end

let instantiate ~(target : Mat2.t) chain =
  Obs.span "mps.instantiate" @@ fun () ->
  let l = Array.length chain.banks in
  let s0 =
    if l = 1 then fill_single_site target chain.banks.(0)
    else fill_first_site target chain.banks.(0)
  in
  if chain.bl_d > 0 then absorb_right s0 ~ld:chain.bl_d chain.bl_re chain.bl_im;
  { sites = Array.append [| s0 |] chain.interior; target }

(* ------------------------------------------------------------------ *)
(* Sampling (step 2, batched)                                          *)
(* ------------------------------------------------------------------ *)

(* Fixed seed behind the sampler's default rng: library callers get
   reproducible draws without opting in (pass an explicit [rng] to
   vary them). *)
let default_rng_seed = 0x5eed

(* Conditional weights of one frontier entry over the physical index:
   weights.(s) = Σ_b |Σ_a w[a]·A[s]_(a,b)|², returning the total.
   [woff] locates the entry's bond vector inside the frontier planes. *)
let frontier_weights site w_re w_im woff weights =
  let dl = site.dl and dr = site.dr and n = site.n in
  let sre = site.re and sim = site.im in
  let total = ref 0.0 in
  for phys = 0 to n - 1 do
    let base = phys * dl * dr in
    let acc = ref 0.0 in
    for b = 0 to dr - 1 do
      let vre = ref 0.0 and vim = ref 0.0 in
      for a = 0 to dl - 1 do
        let are = sre.(base + (a * dr) + b) and aim = sim.(base + (a * dr) + b) in
        let wre = w_re.(woff + a) and wim = w_im.(woff + a) in
        vre := !vre +. (wre *. are) -. (wim *. aim);
        vim := !vim +. (wre *. aim) +. (wim *. are)
      done;
      acc := !acc +. (!vre *. !vre) +. (!vim *. !vim)
    done;
    weights.(phys) <- !acc;
    total := !total +. !acc
  done;
  !total

(* w' = w·A[phys], written into the destination frontier at [doff]. *)
let advance_into site w_re w_im woff phys dst_re dst_im doff =
  let dl = site.dl and dr = site.dr in
  let sre = site.re and sim = site.im in
  let base = phys * dl * dr in
  for b = 0 to dr - 1 do
    let vre = ref 0.0 and vim = ref 0.0 in
    for a = 0 to dl - 1 do
      let are = sre.(base + (a * dr) + b) and aim = sim.(base + (a * dr) + b) in
      let wre = w_re.(woff + a) and wim = w_im.(woff + a) in
      vre := !vre +. (wre *. are) -. (wim *. aim);
      vim := !vim +. (wre *. aim) +. (wim *. are)
    done;
    dst_re.(doff + b) <- !vre;
    dst_im.(doff + b) <- !vim
  done

(* In-place ascending heapsort of a.(0 .. m−1): allocation-free and
   deterministic, so the sorted-uniforms draw can reuse one scratch
   buffer wider than the live prefix. *)
let sort_range a m =
  let swap i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  let rec sift root len =
    let child = (2 * root) + 1 in
    if child < len then begin
      let child = if child + 1 < len && a.(child) < a.(child + 1) then child + 1 else child in
      if a.(root) < a.(child) then begin
        swap root child;
        sift child len
      end
    end
  in
  for i = (m / 2) - 1 downto 0 do
    sift i m
  done;
  for i = m - 1 downto 1 do
    swap 0 i;
    sift 0 i
  done

(* The frontier: all distinct sampled prefixes at the current level,
   stored flat — bond vectors in two float planes (padded to the max
   bond of 4), index prefixes row-major, one multiplicity each.  All k
   draws advance through the chain together, so the per-level work and
   allocation scale with the number of distinct prefixes (≤ k), not
   with k·l. *)
let max_bond = 4

let sample ?rng ?(argmax_last = true) t ~k =
  let rng = match rng with Some r -> r | None -> Random.State.make [| default_rng_seed |] in
  Obs.span "mps.sample" @@ fun () ->
  Obs.incr ~by:k c_samples;
  let l = Array.length t.sites in
  (* Every level emits at most one child per draw (≤ k in total) plus,
     at the last level, one argmax completion per surviving prefix. *)
  let cap = (2 * Int.max 1 k) + 2 in
  let maxn = Array.fold_left (fun m s -> Int.max m s.n) 1 t.sites in
  let w_re = [| Array.make (cap * max_bond) 0.0; Array.make (cap * max_bond) 0.0 |] in
  let w_im = [| Array.make (cap * max_bond) 0.0; Array.make (cap * max_bond) 0.0 |] in
  let idx = [| Array.make (cap * l) 0; Array.make (cap * l) 0 |] in
  let mlt = [| Array.make cap 0; Array.make cap 0 |] in
  let weights = Array.make maxn 0.0 in
  let points = Array.make (Int.max 1 k) 0.0 in
  let cur = ref 0 and count = ref 1 in
  w_re.(0).(0) <- 1.0;
  mlt.(0).(0) <- k;
  for level = 0 to l - 1 do
    let site = t.sites.(level) in
    let c = !cur in
    let nx = 1 - c in
    let cw_re = w_re.(c) and cw_im = w_im.(c) and cidx = idx.(c) and cmlt = mlt.(c) in
    let nw_re = w_re.(nx) and nw_im = w_im.(nx) and nidx = idx.(nx) and nmlt = mlt.(nx) in
    let last = level = l - 1 in
    let next_count = ref 0 in
    let emit parent phys m =
      let ci = !next_count in
      advance_into site cw_re cw_im (parent * max_bond) phys nw_re nw_im (ci * max_bond);
      Array.blit cidx (parent * l) nidx (ci * l) level;
      nidx.((ci * l) + level) <- phys;
      nmlt.(ci) <- m;
      incr next_count
    in
    for e = 0 to !count - 1 do
      let total = frontier_weights site cw_re cw_im (e * max_bond) weights in
      let first_child = !next_count in
      let mult = cmlt.(e) in
      if total > 0.0 then begin
        (* Draw [mult] categorical samples in one pass over sorted
           uniforms; counts come out grouped by physical index. *)
        for m = 0 to mult - 1 do
          points.(m) <- Random.State.float rng total
        done;
        sort_range points mult;
        let j = ref 0 and cum = ref 0.0 and last_nz = ref 0 in
        for phys = 0 to site.n - 1 do
          let w = weights.(phys) in
          cum := !cum +. w;
          if w > 0.0 then last_nz := phys;
          let drawn = ref 0 in
          while !j < mult && points.(!j) <= !cum do
            incr drawn;
            incr j
          done;
          if !drawn > 0 then emit e phys !drawn
        done;
        (* Numerical tail: assign any stragglers to the last nonzero
           weight (merging with its child when one was just drawn). *)
        if !j < mult then begin
          let leftover = mult - !j in
          if !next_count > first_child && nidx.(((!next_count - 1) * l) + level) = !last_nz
          then nmlt.(!next_count - 1) <- nmlt.(!next_count - 1) + leftover
          else emit e !last_nz leftover
        end
      end;
      (* With [argmax_last], each distinct prefix also contributes the
         best completion of the final site: the conditional weights
         there are exactly the per-sequence trace values and have
         already been computed, so taking their maximum costs nothing
         extra and is what makes best-of-k reach deep error targets. *)
      if last && argmax_last then begin
        let best = ref 0 in
        for phys = 1 to site.n - 1 do
          if weights.(phys) > weights.(!best) then best := phys
        done;
        let found = ref false in
        for ci = first_child to !next_count - 1 do
          if nidx.((ci * l) + level) = !best then found := true
        done;
        if not !found then emit e !best 1
      end
    done;
    cur := nx;
    count := !next_count
  done;
  let c = !cur in
  let fw_re = w_re.(c) and fw_im = w_im.(c) and fidx = idx.(c) and fmlt = mlt.(c) in
  let out = ref [] in
  for e = !count - 1 downto 0 do
    out :=
      {
        indices = Array.init l (fun i -> fidx.((e * l) + i));
        amplitude = { Cplx.re = fw_re.(e * max_bond); im = fw_im.(e * max_bond) };
        multiplicity = fmlt.(e);
      }
      :: !out
  done;
  !out

(* Deterministic beam search over the same distribution: keep the [beam]
   highest-weight partials at each level.  Used by the greedy ablation.
   Selection happens in a fixed-size sorted scratch (stable descending
   insertion), never materializing the partials × physical-index score
   list the previous implementation sorted. *)
let beam_search t ~beam =
  Obs.span "mps.beam_search" @@ fun () ->
  if beam <= 0 then []
  else begin
    let l = Array.length t.sites in
    let maxn = Array.fold_left (fun m s -> Int.max m s.n) 1 t.sites in
    let w_re = [| Array.make (beam * max_bond) 0.0; Array.make (beam * max_bond) 0.0 |] in
    let w_im = [| Array.make (beam * max_bond) 0.0; Array.make (beam * max_bond) 0.0 |] in
    let idx = [| Array.make (beam * l) 0; Array.make (beam * l) 0 |] in
    let weights = Array.make maxn 0.0 in
    let sel_w = Array.make beam 0.0 in
    let sel_parent = Array.make beam 0 and sel_phys = Array.make beam 0 in
    let cur = ref 0 and count = ref 1 in
    w_re.(0).(0) <- 1.0;
    for level = 0 to l - 1 do
      let site = t.sites.(level) in
      let c = !cur in
      let nx = 1 - c in
      let cw_re = w_re.(c) and cw_im = w_im.(c) and cidx = idx.(c) in
      let nw_re = w_re.(nx) and nw_im = w_im.(nx) and nidx = idx.(nx) in
      let sel_count = ref 0 in
      for e = 0 to !count - 1 do
        ignore (frontier_weights site cw_re cw_im (e * max_bond) weights);
        for phys = 0 to site.n - 1 do
          let w = weights.(phys) in
          if !sel_count < beam || w > sel_w.(beam - 1) then begin
            (* Stable descending insert: among equal weights the
               earlier-generated candidate keeps the better rank. *)
            let kept = !sel_count in
            let p = ref 0 in
            while !p < kept && sel_w.(!p) >= w do
              incr p
            done;
            if !p < beam then begin
              for q = Int.min (kept - 1) (beam - 2) downto !p do
                sel_w.(q + 1) <- sel_w.(q);
                sel_parent.(q + 1) <- sel_parent.(q);
                sel_phys.(q + 1) <- sel_phys.(q)
              done;
              sel_w.(!p) <- w;
              sel_parent.(!p) <- e;
              sel_phys.(!p) <- phys;
              if kept < beam then sel_count := kept + 1
            end
          end
        done
      done;
      for s = 0 to !sel_count - 1 do
        let parent = sel_parent.(s) and phys = sel_phys.(s) in
        advance_into site cw_re cw_im (parent * max_bond) phys nw_re nw_im (s * max_bond);
        Array.blit cidx (parent * l) nidx (s * l) level;
        nidx.((s * l) + level) <- phys
      done;
      cur := nx;
      count := !sel_count
    done;
    let c = !cur in
    let fw_re = w_re.(c) and fw_im = w_im.(c) and fidx = idx.(c) in
    let out = ref [] in
    for e = !count - 1 downto 0 do
      out :=
        {
          indices = Array.init l (fun i -> fidx.((e * l) + i));
          amplitude = { Cplx.re = fw_re.(e * max_bond); im = fw_im.(e * max_bond) };
          multiplicity = 1;
        }
        :: !out
    done;
    !out
  end
