(** The tensor-network engine of TRASYN (steps 1 and 2 of the paper).

    The trace values Tr(U†·M₁[s₁]·M₂[s₂]⋯M_l[s_l]) over all index
    choices form an exponentially large tensor; this module represents
    it as an MPS with bond dimension ≤ 4:

      site 1:  T₁[s]_(c,b)        = Σ_a conj(U_(a,b)) · M₁[s]_(a,c)
      site i:  T_i[s]_((c,b),(c',b')) = M_i[s]_(c,c') · δ_(b,b')
      site l:  T_l[s]_(c,b)       = M_l[s]_(c,b)

    (the δ-line carries the target's second matrix dimension from the
    end of the chain back to the beginning — the paper's "loop cut").
    A right-to-left orthogonalization sweep brings the MPS to canonical
    form, after which gate sequences are sampled from the chain rule
    p(s₁)p(s₂|s₁)… with each conditional computed locally, and every
    sample's trace value falls out of the final contraction for free. *)

type site = {
  dl : int;  (** left bond dimension *)
  dr : int;  (** right bond dimension *)
  n : int;  (** physical dimension = number of Clifford+T operators *)
  re : float array;  (** (s·dl + a)·dr + b, row-major per physical index *)
  im : float array;
  bank : Sitebank.t;
}

type t = { sites : site array; target : Mat2.t }

type sample = {
  indices : int array;  (** one physical index per site *)
  amplitude : Cplx.t;  (** Tr(U†·∏ M[sᵢ]) — the trace value *)
  multiplicity : int;  (** how many of the k draws landed here *)
}

let site_get s phys a b =
  let idx = (((phys * s.dl) + a) * s.dr) + b in
  { Cplx.re = s.re.(idx); im = s.im.(idx) }

let site_set s phys a b (z : Cplx.t) =
  let idx = (((phys * s.dl) + a) * s.dr) + b in
  s.re.(idx) <- z.Cplx.re;
  s.im.(idx) <- z.Cplx.im

let make_site bank dl dr =
  let n = bank.Sitebank.count in
  { dl; dr; n; re = Array.make (n * dl * dr) 0.0; im = Array.make (n * dl * dr) 0.0; bank }

(* Matrix entry of physical index [phys] of a bank. *)
let bank_entry bank phys row col =
  { Cplx.re = bank.Sitebank.re.((phys * 4) + (row * 2) + col);
    im = bank.Sitebank.im.((phys * 4) + (row * 2) + col) }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let c_sweeps = Obs.counter "mps.sweeps"
let c_samples = Obs.counter "mps.samples_drawn"

let build ~(target : Mat2.t) (banks : Sitebank.t array) =
  let l = Array.length banks in
  if l = 0 then invalid_arg "Mps.build: need at least one site";
  Obs.span "mps.build" @@ fun () ->
  let u = Cmatrix.of_mat2 target in
  let sites =
    Array.mapi
      (fun i bank ->
        if l = 1 then begin
          (* Single site: the tensor is directly the trace values. *)
          let s = make_site bank 1 1 in
          for phys = 0 to s.n - 1 do
            let acc = ref Cplx.zero in
            for a = 0 to 1 do
              for b = 0 to 1 do
                acc :=
                  Cplx.add !acc
                    (Cplx.mul (Cplx.conj (Cmatrix.get u a b)) (bank_entry bank phys a b))
              done
            done;
            site_set s phys 0 0 !acc
          done;
          s
        end
        else if i = 0 then begin
          (* First site: fold in U† and open the composite bond (c,b). *)
          let s = make_site bank 1 4 in
          for phys = 0 to s.n - 1 do
            for c = 0 to 1 do
              for b = 0 to 1 do
                let acc = ref Cplx.zero in
                for a = 0 to 1 do
                  acc :=
                    Cplx.add !acc
                      (Cplx.mul (Cplx.conj (Cmatrix.get u a b)) (bank_entry bank phys a c))
                done;
                site_set s phys 0 ((c * 2) + b) !acc
              done
            done
          done;
          s
        end
        else if i = l - 1 then begin
          (* Last site: close the composite bond. *)
          let s = make_site bank 4 1 in
          for phys = 0 to s.n - 1 do
            for c = 0 to 1 do
              for b = 0 to 1 do
                site_set s phys ((c * 2) + b) 0 (bank_entry bank phys c b)
              done
            done
          done;
          s
        end
        else begin
          (* Middle site: M ⊗ identity line. *)
          let s = make_site bank 4 4 in
          for phys = 0 to s.n - 1 do
            for c = 0 to 1 do
              for c' = 0 to 1 do
                for b = 0 to 1 do
                  site_set s phys ((c * 2) + b) ((c' * 2) + b) (bank_entry bank phys c c')
                done
              done
            done
          done;
          s
        end)
      banks
  in
  { sites; target }

(* Exact trace value for a full index assignment (direct evaluation,
   used by tests and to double-check samples). *)
let trace_of_indices t indices =
  let prod =
    Array.to_list indices
    |> List.mapi (fun i s -> Sitebank.matrix t.sites.(i).bank s)
    |> Mat2.product
  in
  Mat2.trace (Mat2.mul (Mat2.adjoint t.target) prod)

(* ------------------------------------------------------------------ *)
(* Canonicalization (right-to-left LQ sweep)                           *)
(* ------------------------------------------------------------------ *)

(* View a site as a (dl × n·dr) matrix. *)
let site_to_matrix s =
  Cmatrix.init s.dl (s.n * s.dr) (fun a j -> site_get s (j / s.dr) a (j mod s.dr))

let site_of_matrix s m =
  for a = 0 to s.dl - 1 do
    for j = 0 to (s.n * s.dr) - 1 do
      site_set s (j / s.dr) a (j mod s.dr) (Cmatrix.get m a j)
    done
  done

(* Contract a (dl × dl) matrix into the right bond of a site:
   A[s]_(a,b) ← Σ_c A[s]_(a,c) · L_(c,b). *)
let absorb_right s lmat =
  for phys = 0 to s.n - 1 do
    for a = 0 to s.dl - 1 do
      let row = Array.init s.dr (fun c -> site_get s phys a c) in
      for b = 0 to s.dr - 1 do
        let acc = ref Cplx.zero in
        for c = 0 to s.dr - 1 do
          acc := Cplx.add !acc (Cplx.mul row.(c) (Cmatrix.get lmat c b))
        done;
        site_set s phys a b !acc
      done
    done
  done

(* Bring sites 1..l−1 to right-canonical form; site 0 absorbs the norm. *)
let canonicalize t =
  Obs.span "mps.canonicalize" @@ fun () ->
  let l = Array.length t.sites in
  Obs.incr ~by:(max 0 (l - 1)) c_sweeps;
  for i = l - 1 downto 1 do
    let s = t.sites.(i) in
    let m = site_to_matrix s in
    let lmat, q = Svd.lq m in
    site_of_matrix s q;
    absorb_right t.sites.(i - 1) lmat
  done

(* Canonical-form check: Σ_s A[s]·A[s]† = identity on the left bond. *)
let right_canonical_error s =
  let acc = Cmatrix.create s.dl s.dl in
  for phys = 0 to s.n - 1 do
    for a = 0 to s.dl - 1 do
      for a' = 0 to s.dl - 1 do
        let sum = ref (Cmatrix.get acc a a') in
        for b = 0 to s.dr - 1 do
          sum := Cplx.add !sum (Cplx.mul (site_get s phys a b) (Cplx.conj (site_get s phys a' b)))
        done;
        Cmatrix.set acc a a' !sum
      done
    done
  done;
  Cmatrix.frobenius_norm (Cmatrix.sub acc (Cmatrix.identity s.dl))

(* ------------------------------------------------------------------ *)
(* Sampling (step 2)                                                   *)
(* ------------------------------------------------------------------ *)

type partial = { w_re : float array; w_im : float array; chosen : int list; mult : int }

(* Weights over the physical index for a partial state: ‖w·A[s]‖². *)
let weights_of_partial site (p : partial) =
  let weights = Array.make site.n 0.0 in
  let dl = site.dl and dr = site.dr in
  for phys = 0 to site.n - 1 do
    let base = phys * dl * dr in
    let acc = ref 0.0 in
    for b = 0 to dr - 1 do
      let vre = ref 0.0 and vim = ref 0.0 in
      for a = 0 to dl - 1 do
        let are = site.re.(base + (a * dr) + b) and aim = site.im.(base + (a * dr) + b) in
        vre := !vre +. (p.w_re.(a) *. are) -. (p.w_im.(a) *. aim);
        vim := !vim +. (p.w_re.(a) *. aim) +. (p.w_im.(a) *. are)
      done;
      acc := !acc +. (!vre *. !vre) +. (!vim *. !vim)
    done;
    weights.(phys) <- !acc
  done;
  weights

let advance_partial site (p : partial) phys =
  let dl = site.dl and dr = site.dr in
  let w_re = Array.make dr 0.0 and w_im = Array.make dr 0.0 in
  let base = phys * dl * dr in
  for b = 0 to dr - 1 do
    let vre = ref 0.0 and vim = ref 0.0 in
    for a = 0 to dl - 1 do
      let are = site.re.(base + (a * dr) + b) and aim = site.im.(base + (a * dr) + b) in
      vre := !vre +. (p.w_re.(a) *. are) -. (p.w_im.(a) *. aim);
      vim := !vim +. (p.w_re.(a) *. aim) +. (p.w_im.(a) *. are)
    done;
    w_re.(b) <- !vre;
    w_im.(b) <- !vim
  done;
  { p with w_re; w_im; chosen = phys :: p.chosen }

(* Draw [mult] categorical samples from unnormalized [weights] in one
   pass using sorted uniforms; returns (index, count) pairs. *)
let draw_counts rng weights mult =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then []
  else begin
    let points = Array.init mult (fun _ -> Random.State.float rng total) in
    Array.sort compare points;
    let counts = Hashtbl.create 16 in
    let cum = ref 0.0 and j = ref 0 in
    Array.iteri
      (fun phys w ->
        cum := !cum +. w;
        let c = ref 0 in
        while !j < mult && points.(!j) <= !cum do
          incr c;
          incr j
        done;
        if !c > 0 then Hashtbl.replace counts phys !c)
      weights;
    (* Numerical tail: assign any stragglers to the last nonzero weight. *)
    if !j < mult then begin
      let last = ref 0 in
      Array.iteri (fun phys w -> if w > 0.0 then last := phys) weights;
      let prev = Option.value ~default:0 (Hashtbl.find_opt counts !last) in
      Hashtbl.replace counts !last (prev + (mult - !j))
    end;
    Hashtbl.fold (fun phys c acc -> (phys, c) :: acc) counts []
  end

(* Sample k gate-sequence index tuples from the canonicalized MPS.

    With [argmax_last] (the default), each distinct sampled prefix also
    contributes the best completion of the final site: the conditional
    weights there are exactly the per-sequence trace values and have
    already been computed, so taking their maximum costs nothing extra
    and is what makes best-of-k reach deep error targets. *)
let sample ?(rng = Random.State.make_self_init ()) ?(argmax_last = true) t ~k =
  Obs.span "mps.sample" @@ fun () ->
  Obs.incr ~by:k c_samples;
  let l = Array.length t.sites in
  let init = { w_re = [| 1.0 |]; w_im = [| 0.0 |]; chosen = []; mult = k } in
  let finish p =
    let amplitude = { Cplx.re = p.w_re.(0); im = p.w_im.(0) } in
    { indices = Array.of_list (List.rev p.chosen); amplitude; multiplicity = p.mult }
  in
  let argmax weights =
    let best = ref 0 in
    Array.iteri (fun i w -> if w > weights.(!best) then best := i) weights;
    !best
  in
  let rec go level partials =
    if level = l then List.map finish partials
    else begin
      let site = t.sites.(level) in
      let last = level = l - 1 in
      let children =
        List.concat_map
          (fun p ->
            let weights = weights_of_partial site p in
            let drawn =
              List.map
                (fun (phys, c) -> { (advance_partial site p phys) with mult = c })
                (draw_counts rng weights p.mult)
            in
            if last && argmax_last then begin
              let best = argmax weights in
              if List.exists (fun (q : partial) -> List.hd q.chosen = best) drawn then drawn
              else { (advance_partial site p best) with mult = 1 } :: drawn
            end
            else drawn)
          partials
      in
      go (level + 1) children
    end
  in
  go 0 [ init ]

(* Deterministic beam search over the same distribution: keep the [beam]
   highest-weight partials at each level.  Used by the greedy ablation. *)
let beam_search t ~beam =
  Obs.span "mps.beam_search" @@ fun () ->
  let l = Array.length t.sites in
  let init = { w_re = [| 1.0 |]; w_im = [| 0.0 |]; chosen = []; mult = 1 } in
  let finish p =
    let amplitude = { Cplx.re = p.w_re.(0); im = p.w_im.(0) } in
    { indices = Array.of_list (List.rev p.chosen); amplitude; multiplicity = p.mult }
  in
  let rec go level partials =
    if level = l then List.map finish partials
    else begin
      let site = t.sites.(level) in
      let scored =
        List.concat_map
          (fun p ->
            let weights = weights_of_partial site p in
            Array.to_list (Array.mapi (fun phys w -> (w, p, phys)) weights))
          partials
      in
      let sorted = List.sort (fun (w1, _, _) (w2, _, _) -> compare w2 w1) scored in
      let top = List.filteri (fun i _ -> i < beam) sorted in
      go (level + 1) (List.map (fun (_, p, phys) -> advance_partial site p phys) top)
    end
  in
  go 0 [ init ]
