(** TRASYN: tensor-network guided synthesis of arbitrary single-qubit
    unitaries over Clifford+T (the paper's core contribution).

    [synthesize] solves Eq. (3): minimize distance subject to a T
    budget, expressed as a list of per-site T-count caps.  [to_error]
    wraps it in Algorithm 1's outer loop to solve Eq. (4): meet an error
    threshold with increasing budgets. *)

type config = {
  table_t : int;  (** step-0 table depth (max T per site); paper: 10 *)
  samples : int;  (** k, number of sampled sequences; paper: 40000 *)
  beam : int;  (** extra deterministic beam width, 0 to disable *)
  post_process : bool;  (** run step 3 *)
  seed : int;
  reuse_chains : bool;  (** reuse canonicalized interiors across calls *)
  gate_set : string;  (** which step-0 table ([Ma_table.get_for]) to sample *)
}

let default_config =
  {
    table_t = 8;
    samples = 1024;
    beam = 32;
    post_process = true;
    seed = 0x7a51;
    reuse_chains = true;
    gate_set = "cliffordt";
  }

(* Observability handles (interned once; see lib/obs). *)
let c_attempts = Obs.counter "trasyn.attempts"
let c_restarts = Obs.counter "trasyn.restarts"
let c_escalations = Obs.counter "trasyn.budget_escalations"
let h_tcount = Obs.histogram ~buckets:(Array.init 33 (fun i -> float_of_int (4 * i))) "trasyn.t_count"

(* ------------------------------------------------------------------ *)
(* Chain cache                                                         *)
(* ------------------------------------------------------------------ *)

(* Only the first MPS site depends on the target; everything else —
   banks and the canonicalized interior — is a pure function of
   (table_t, per-site T ranges).  Both of TRASYN's outer loops hammer
   the same few keys: [to_error] escalates through growing prefixes of
   one budget list, and [synthesize_timed] reseeds the very same
   budgets over and over.  Caching the canonicalized chain turns every
   repeat into "fill one site + absorb one 4×4 boundary factor".

   The cache is shared across domains (the Planner calls [synthesize]
   concurrently), hence the mutex; cached interiors are read-only after
   publication, so handing the same chain to several domains is safe.
   The chain is computed while holding the lock — concurrent requests
   for the same key then dedup instead of racing.  FIFO eviction keeps
   at most [chain_capacity] chains alive (a chain at table_t = 10 is a
   few MB of bank + site floats). *)

let c_chain_hit = Obs.counter "mps.chain_cache.hit"
let c_chain_miss = Obs.counter "mps.chain_cache.miss"
let c_chain_evict = Obs.counter "mps.chain_cache.evictions"

type chain_key = string * int * (int * int) list

type chain_entry = {
  chain : Mps.chain;
  (* Reseed memo: [synthesize_timed] re-instantiates the same target
     dozens of times; one slot catches that without keying the cache by
     target.  Comparison is bitwise — [=] on floats would equate 0.0
     with -0.0 and diverge on NaN payloads, breaking the bit-identity
     guarantee. *)
  mutable last_target : Mat2.t option;
  mutable last_mps : Mps.t option;
}

let chain_capacity = 16
let chain_cache : (chain_key, chain_entry) Hashtbl.t = Hashtbl.create chain_capacity
let chain_order : chain_key Queue.t = Queue.create ()
let chain_lock = Mutex.create ()

let clear_chain_cache () =
  Mutex.lock chain_lock;
  Hashtbl.reset chain_cache;
  Queue.clear chain_order;
  Mutex.unlock chain_lock

let cplx_bits_equal (a : Cplx.t) (b : Cplx.t) =
  Int64.bits_of_float a.Cplx.re = Int64.bits_of_float b.Cplx.re
  && Int64.bits_of_float a.Cplx.im = Int64.bits_of_float b.Cplx.im

let mat2_bits_equal (a : Mat2.t) (b : Mat2.t) =
  cplx_bits_equal a.Mat2.m00 b.Mat2.m00
  && cplx_bits_equal a.Mat2.m01 b.Mat2.m01
  && cplx_bits_equal a.Mat2.m10 b.Mat2.m10
  && cplx_bits_equal a.Mat2.m11 b.Mat2.m11

(* [clamped] has been validated and clamped to the table depth. *)
let banks_of config clamped =
  let table = Ma_table.get_for ~gate_set:config.gate_set config.table_t in
  Array.of_list (List.map (fun (lo, hi) -> Sitebank.of_table table ~lo ~hi) clamped)

(* A ready-to-sample MPS for the target.  The cached path and the cold
   path run the same fill/LQ/absorb kernels on the same values in the
   same order, so their outputs are bit-identical (gated in runtest). *)
let mps_for config ~target clamped =
  if not config.reuse_chains then begin
    let mps = Mps.build ~target (banks_of config clamped) in
    Mps.canonicalize mps;
    mps
  end
  else begin
    let key = (config.gate_set, config.table_t, clamped) in
    let with_lock f =
      Mutex.lock chain_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock chain_lock) f
    in
    let entry =
      match with_lock (fun () -> Hashtbl.find_opt chain_cache key) with
      | Some e ->
          Obs.incr c_chain_hit;
          e
      | None ->
          (* Build the chain outside the lock: the LQ sweep in
             [canonical_chain] is the expensive part, and holding the
             mutex across it would serialize every concurrent miss.
             Double-check before inserting — another domain may have
             built the same chain meanwhile; its entry wins so the
             reseed memo stays unique per key. *)
          Obs.incr c_chain_miss;
          let fresh =
            { chain = Mps.canonical_chain (banks_of config clamped); last_target = None; last_mps = None }
          in
          with_lock (fun () ->
              match Hashtbl.find_opt chain_cache key with
              | Some winner -> winner
              | None ->
                  if Hashtbl.length chain_cache >= chain_capacity then begin
                    let oldest = Queue.pop chain_order in
                    Hashtbl.remove chain_cache oldest;
                    Obs.incr c_chain_evict
                  end;
                  Hashtbl.replace chain_cache key fresh;
                  Queue.push key chain_order;
                  fresh)
    in
    (* The reseed memo mutates the shared entry; keep it under the
       lock so concurrent instantiations of different targets on the
       same chain never tear the (target, mps) pair. *)
    with_lock (fun () ->
        match (entry.last_mps, entry.last_target) with
        | Some m, Some t when mat2_bits_equal t target -> m
        | _ ->
            let m = Mps.instantiate ~target entry.chain in
            entry.last_target <- Some target;
            entry.last_mps <- Some m;
            m)
  end

type result = {
  seq : Ctgate.t list;
  distance : float;
  t_count : int;
  clifford_count : int;
  trace_value : float;
  sites : int;
  samples_used : int;
}

let result_of_seq ~target ~sites ~samples seq =
  let m = Ctgate.seq_to_mat2 seq in
  let tv = Mat2.trace_value target m in
  {
    seq;
    distance = Mat2.distance target m;
    t_count = Ctgate.t_count seq;
    clifford_count = Ctgate.clifford_count seq;
    trace_value = tv;
    sites;
    samples_used = samples;
  }

(* Concatenate the per-site sequences of one sampled index tuple —
   a right-to-left fold over the index array, no intermediate lists. *)
let seq_of_sample (mps : Mps.t) (s : Mps.sample) =
  let indices = s.Mps.indices in
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (Sitebank.sequence mps.Mps.sites.(i).Mps.bank indices.(i) @ acc)
  in
  go (Array.length indices - 1) []

(* [epsilon] switches the selection rule from Eq. (3) (minimize error)
   to Eq. (4) (among solutions meeting the threshold, minimize T).
   [t_slack] relaxes Eq. (4): once the minimal T count is known, any
   solution within [t_slack] extra T gates may be picked for its lower
   error — a cheap hedge against error accumulation at circuit level. *)
let synthesize_ranges ?(config = default_config) ?epsilon ?(t_slack = 0) ~target ~ranges () =
  if ranges = [] then invalid_arg "Trasyn.synthesize: empty budget list";
  Obs.span "trasyn.synthesize" @@ fun () ->
  Obs.incr c_attempts;
  let clamped =
    List.map
      (fun (lo, hi) ->
        if lo > hi || lo < 0 then invalid_arg "Trasyn.synthesize_ranges: bad range";
        (lo, min hi config.table_t))
      ranges
  in
  let mps = mps_for config ~target clamped in
  let rng = Random.State.make [| config.seed |] in
  let sampled = Mps.sample ~rng mps ~k:config.samples in
  let beamed = if config.beam > 0 then Mps.beam_search mps ~beam:config.beam else [] in
  (* Rank all samples by the mode's objective using quantities that are
     free from the contraction: the amplitude gives the distance, the
     bank gives a T-count bound.  Only the best few get the (exact)
     post-processing treatment. *)
  let free_stats (s : Mps.sample) =
    let tv = Cplx.norm s.Mps.amplitude /. 2.0 in
    let dist = Float.sqrt (Float.max 0.0 (1.0 -. (tv *. tv))) in
    let t_est = ref 0 in
    Array.iteri
      (fun i phys -> t_est := !t_est + Sitebank.tcount mps.Mps.sites.(i).Mps.bank phys)
      s.Mps.indices;
    (dist, !t_est)
  in
  let free_key =
    match epsilon with
    | None -> fun (dist, t_est) -> (0, dist, float_of_int t_est)
    | Some eps ->
        fun (dist, t_est) ->
          if dist <= eps then (0, float_of_int t_est, dist) else (1, dist, float_of_int t_est)
  in
  (* Decorate-sort-undecorate: each sample's stats are a fold over every
     site, so compute them once per sample, not once per comparison. *)
  let scored =
    List.map (fun s -> (free_key (free_stats s), s)) (sampled @ beamed)
    |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
    |> List.map snd
  in
  let top = List.filteri (fun i _ -> i < 16) scored in
  let table = Ma_table.get_for ~gate_set:config.gate_set config.table_t in
  let l = Array.length mps.Mps.sites in
  let candidates =
    List.map
      (fun s ->
        let seq = seq_of_sample mps s in
        let seq =
          if config.post_process then Obs.span "trasyn.postprocess" (fun () -> Postprocess.run table seq)
          else seq
        in
        result_of_seq ~target ~sites:l ~samples:config.samples seq)
      top
  in
  let order =
    match epsilon with
    | None ->
        fun a b ->
          compare (a.distance, a.t_count, a.clifford_count) (b.distance, b.t_count, b.clifford_count)
    | Some eps ->
        (* Meeting the threshold beats everything; then spend as few T
           (and Cliffords) as possible. *)
        let key r =
          if r.distance <= eps then (0, float_of_int r.t_count, float_of_int r.clifford_count, r.distance)
          else (1, r.distance, float_of_int r.t_count, float_of_int r.clifford_count)
        in
        fun a b -> compare (key a) (key b)
  in
  let chosen =
    match (List.sort order candidates, epsilon) with
    | [], _ -> failwith "Trasyn.synthesize: sampling produced no candidates"
    | best :: rest, Some eps when t_slack > 0 && best.distance <= eps ->
        List.fold_left
          (fun acc r ->
            if r.distance <= eps && r.t_count <= best.t_count + t_slack && r.distance < acc.distance
            then r
            else acc)
          best rest
    | best :: _, _ -> best
  in
  Obs.observe h_tcount (float_of_int chosen.t_count);
  chosen

(* The common case: per-site caps, each site ranging over 0..cap. *)
let synthesize ?config ?epsilon ?t_slack ~target ~budgets () =
  synthesize_ranges ?config ?epsilon ?t_slack ~target ~ranges:(List.map (fun b -> (0, b)) budgets) ()

(* Algorithm 1: try growing prefixes of the budget list (and [attempts]
   seeds per prefix) until the error threshold is met; always return the
   best solution seen.

   [selection] picks what "best" means once the threshold is reachable:
   - [`Best_error] (default, the paper's Algorithm 1): keep lowering the
     error within the first sufficient budget — "the algorithm
     prioritizes lowering the error within a T budget and reports the
     best solution instead of solutions closer to the thresholds".
   - [`Min_t]: a strict Eq. (4) reading — among solutions meeting the
     threshold, spend as few T gates as possible. *)
let to_error ?(config = default_config) ?(attempts = 2) ?(selection = `Best_error) ?(t_slack = 0)
    ~target ~budgets ~epsilon () =
  let n = List.length budgets in
  let better (a : result) (b : result) =
    let key x =
      match selection with
      | `Best_error -> (0.0, x.distance, float_of_int x.t_count)
      | `Min_t ->
          if x.distance <= epsilon then (0.0, float_of_int x.t_count, x.distance)
          else (1.0, x.distance, float_of_int x.t_count)
    in
    if key a <= key b then a else b
  in
  let eps_for_synth = match selection with `Min_t -> Some epsilon | `Best_error -> None in
  let rec go sites attempt best =
    if sites > n then best
    else begin
      let prefix = List.filteri (fun i _ -> i < sites) budgets in
      let cfg = { config with seed = config.seed + (attempt * 7919) + sites } in
      let r = synthesize ~config:cfg ?epsilon:eps_for_synth ~t_slack ~target ~budgets:prefix () in
      let best = match best with Some b -> Some (better b r) | None -> Some r in
      match best with
      | Some b when b.distance <= epsilon -> best
      | _ ->
          if attempt + 1 < attempts then go sites (attempt + 1) best
          else begin
            Obs.incr c_escalations;
            go (sites + 1) 0 best
          end
    end
  in
  match go 1 0 None with
  | Some r -> r
  | None -> failwith "Trasyn.to_error: no budgets"

(* The paper's RQ1 protocol allots each tool a wall-clock budget per
   unitary; this wrapper keeps reseeding [synthesize] until the deadline
   and returns the best result seen (Eq. (3) objective).  The deadline
   is measured on the monotonic clock so it survives wall-clock jumps
   (NTP slews, DST) mid-run. *)
let synthesize_timed ?(config = default_config) ?(deadline = Obs.Deadline.none) ~seconds ~target
    ~budgets () =
  (* A zero (or negative, or NaN) budget means "one attempt, no
     reseeding": the deadline is already expired when the loop first
     tests it, so exactly one synthesize runs and its result is
     returned — never a busy loop, never zero attempts. *)
  let deadline = Obs.Deadline.earliest deadline (Obs.Deadline.after (Float.max 0.0 seconds)) in
  let rec go attempt best =
    if Obs.Deadline.expired deadline && best <> None then Option.get best
    else begin
      if attempt > 0 then Obs.incr c_restarts;
      let cfg = { config with seed = config.seed + (attempt * 65537) } in
      let r = synthesize ~config:cfg ~target ~budgets () in
      let best =
        match best with
        | Some b when (b.distance, b.t_count) <= (r.distance, r.t_count) -> Some b
        | _ -> Some r
      in
      if Obs.Deadline.expired deadline then Option.get best else go (attempt + 1) best
    end
  in
  go 0 None

(* Convenience entry points used by the pipelines. *)
let synthesize_u3 ?config ~theta ~phi ~lam ~budgets () =
  synthesize ?config ~target:(Mat2.u3 theta phi lam) ~budgets ()

let synthesize_rz ?config ~theta ~budgets () =
  synthesize ?config ~target:(Mat2.rz theta) ~budgets ()
