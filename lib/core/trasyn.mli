(** TRASYN: tensor-network guided synthesis of arbitrary single-qubit
    unitaries over Clifford+T — the paper's core contribution.

    The search space of gate sequences is represented as a bond-4 MPS of
    trace values ({!Mps}); sequences are sampled in proportion to
    |Tr(U†V)|² and post-processed against the exact step-0 table
    ({!Ma_table}, {!Postprocess}). *)

type config = {
  table_t : int;  (** step-0 table depth = max T per MPS site (paper: 10) *)
  samples : int;  (** k, number of sampled sequences (paper: 40000) *)
  beam : int;  (** width of the extra deterministic beam pass; 0 disables *)
  post_process : bool;  (** run step 3 peephole resynthesis *)
  seed : int;  (** RNG seed — synthesis is deterministic given a config *)
  reuse_chains : bool;
      (** Cache canonicalized target-independent chain interiors keyed
          by [(gate_set, table_t, ranges)] and reuse them across calls
          (budget escalation, timed reseeds, repeated targets).
          Results are bit-identical either way; disable only to
          benchmark the cold path.  Default: [true]. *)
  gate_set : string;
      (** Which step-0 table the MPS sites range over, resolved through
          [Ma_table.get_for] — ["cliffordt"] builds in-process, any
          other name must have a generated table provided.  Also keys
          the chain cache, so two alphabets never share interiors.
          Default: ["cliffordt"]. *)
}

val default_config : config
(** CPU-friendly defaults: table_t = 8, samples = 1024, beam = 32,
    reuse_chains = true, gate_set = "cliffordt". *)

val clear_chain_cache : unit -> unit
(** Drop every cached canonicalized chain (the process-wide cache
    behind [reuse_chains]; observable as [mps.chain_cache.hit] /
    [.miss] / [.evictions]).  Safe to call concurrently with synthesis;
    in-flight calls keep their already-acquired chains. *)

type result = {
  seq : Ctgate.t list;  (** the Clifford+T word, in matrix order *)
  distance : float;  (** unitary distance to the target, Eq. (2) *)
  t_count : int;
  clifford_count : int;  (** non-Pauli Cliffords in [seq] *)
  trace_value : float;  (** |Tr(U†V)|/2 of the result *)
  sites : int;  (** number of MPS sites used *)
  samples_used : int;
}

val synthesize_ranges :
  ?config:config ->
  ?epsilon:float ->
  ?t_slack:int ->
  target:Mat2.t ->
  ranges:(int * int) list ->
  unit ->
  result
(** General form: each MPS site ranges over the operators whose T count
    lies in the given (lo, hi) interval — "each tensor can have a
    different T count range" (§3.3).
    @raise Invalid_argument on empty or malformed ranges. *)

val synthesize :
  ?config:config ->
  ?epsilon:float ->
  ?t_slack:int ->
  target:Mat2.t ->
  budgets:int list ->
  unit ->
  result
(** Solve Eq. (3): minimize the distance to [target] subject to the T
    budget, one entry of [budgets] per MPS site (each site ranges over
    all operators with that many T gates or fewer).  When [epsilon] is
    given the selection flips to Eq. (4): among sampled solutions
    meeting the threshold, minimize the T count; [t_slack] then allows
    up to that many extra T gates in exchange for lower error.

    @raise Invalid_argument on an empty budget list. *)

val to_error :
  ?config:config ->
  ?attempts:int ->
  ?selection:[ `Best_error | `Min_t ] ->
  ?t_slack:int ->
  target:Mat2.t ->
  budgets:int list ->
  epsilon:float ->
  unit ->
  result
(** Algorithm 1 of the paper: try growing prefixes of [budgets] (and
    [attempts] reseeded tries per prefix) until [epsilon] is met,
    always returning the best solution seen.  [`Best_error] (default,
    paper-faithful) keeps lowering the error within the first
    sufficient budget; [`Min_t] reads Eq. (4) strictly and spends as
    few T gates as possible once the threshold is met. *)

val synthesize_timed :
  ?config:config ->
  ?deadline:Obs.Deadline.t ->
  seconds:float ->
  target:Mat2.t ->
  budgets:int list ->
  unit ->
  result
(** Keep reseeding {!synthesize} until the wall-clock budget expires and
    return the best result — the paper's RQ1 protocol (10 minutes per
    unitary there; pick your own here).  The effective deadline is the
    tighter of [seconds] from now and the caller's [deadline]; a
    [seconds] budget ≤ 0 still runs exactly one attempt (never a busy
    loop).  Both are measured on the monotonic clock. *)

val synthesize_u3 :
  ?config:config -> theta:float -> phi:float -> lam:float -> budgets:int list -> unit -> result
(** [synthesize] on U3(θ,φ,λ). *)

val synthesize_rz : ?config:config -> theta:float -> budgets:int list -> unit -> result
(** [synthesize] on Rz(θ) — TRASYN is general, so z-rotations need no
    special-casing. *)
