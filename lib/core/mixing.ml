(** Probabilistic mixing of synthesized unitaries (Campbell 2017;
    Hastings 2016) — the extension the paper's related-work section
    points at: "using TRASYN as a blackbox algorithm, mixing unitaries
    can reduce the error quadratically".

    A deterministic approximation V of U has coherent error
    D(U,V) = ε.  Executing V₁ with probability p and V₂ with 1−p
    implements the channel E(ρ) = p·V₁ρV₁† + (1−p)·V₂ρV₂†; when the
    first-order (trace-orthogonal) error components of V₁ and V₂ point
    in opposing directions, a suitable p cancels them, leaving an
    incoherent remainder of order ε² — magic-state-free error
    suppression on top of any synthesizer.

    We work at the PTM (channel) level: the figure of merit is process
    infidelity 1 − F_pro, which for a coherent error ε is ≈ ε²·(2/3)
    and for the optimal mixture drops by roughly another factor of the
    cancellation quality. *)

type candidate = { seq : Ctgate.t list; mat : Mat2.t; distance : float }

type mixture = {
  first : candidate;
  second : candidate;
  p : float;  (** probability of [first] *)
  norm_distance : float;  (** ‖R_mix − R_U‖_F, the diamond-norm-scale metric *)
  deterministic_norm_distance : float;  (** same metric, best single candidate *)
  process_infidelity : float;  (** 1 − F_pro of the mixed channel *)
  deterministic_infidelity : float;  (** 1 − F_pro of the best single candidate *)
}

let candidate_of_result (r : Trasyn.result) =
  { seq = r.Trasyn.seq; mat = Ctgate.seq_to_mat2 r.Trasyn.seq; distance = r.Trasyn.distance }

let mixed_ptm p r1 r2 =
  Array.init 4 (fun i ->
      Array.init 4 (fun j -> (p *. r1.(i).(j)) +. ((1.0 -. p) *. r2.(i).(j))))

(* Frobenius distance between PTMs. *)
let ptm_distance (a : Ptm.t) (b : Ptm.t) =
  let acc = ref 0.0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let d = a.(i).(j) -. b.(i).(j) in
      acc := !acc +. (d *. d)
    done
  done;
  Float.sqrt !acc

(* Both error metrics of the channel p·V₁ + (1−p)·V₂ against U. *)
let mixed_norm_distance ~target p v1 v2 =
  let ru = Ptm.of_mat2 target in
  ptm_distance ru (mixed_ptm p (Ptm.of_mat2 v1) (Ptm.of_mat2 v2))

let mixed_infidelity ~target p v1 v2 =
  let ru = Ptm.of_mat2 target in
  1.0 -. Ptm.process_fidelity ru (mixed_ptm p (Ptm.of_mat2 v1) (Ptm.of_mat2 v2))

(* Best mixing probability for a fixed pair by golden-section search
   (the norm distance is smooth and unimodal in p).  Works on
   precomputed PTMs: the search evaluates its objective ~100 times and
   the Mat2→PTM conversion of target and candidates must not be paid
   per evaluation. *)
let optimize_p_ptm ru r1 r2 =
  let f p = ptm_distance ru (mixed_ptm p r1 r2) in
  let phi = (Float.sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref 0.0 and b = ref 1.0 in
  for _ = 1 to 50 do
    let x1 = !b -. (phi *. (!b -. !a)) and x2 = !a +. (phi *. (!b -. !a)) in
    if f x1 < f x2 then b := x2 else a := x1
  done;
  let p = 0.5 *. (!a +. !b) in
  (p, f p)

(* Synthesize a pool of diverse candidates by reseeding TRASYN, then
   pick the pair + probability minimizing the mixed process
   infidelity. *)
let synthesize ?(config = Trasyn.default_config) ?(pool = 6) ~target ~budgets () =
  (* Diversity matters more than individual quality: error directions
     of same-budget solutions correlate, so half the pool also drops
     the post-processing pass and varies the final-site budget. *)
  let variant i =
    let cfg = { config with seed = config.seed + (i * 104729); post_process = i mod 2 = 0 } in
    let budgets =
      match (i mod 3, List.rev budgets) with
      | 1, last :: rest when last > 2 -> List.rev ((last - 1) :: rest)
      | 2, last :: rest when last > 4 -> List.rev ((last - 2) :: rest)
      | _ -> budgets
    in
    candidate_of_result (Trasyn.synthesize ~config:cfg ~target ~budgets ())
  in
  let candidates = List.init pool variant in
  (* Deduplicate identical sequences (reseeding can converge). *)
  let distinct =
    List.sort_uniq (fun a b -> compare (Ctgate.seq_to_string a.seq) (Ctgate.seq_to_string b.seq))
      candidates
  in
  let best_single =
    List.fold_left (fun acc c -> if c.distance < acc.distance then c else acc) (List.hd distinct)
      distinct
  in
  let det_norm = mixed_norm_distance ~target 1.0 best_single.mat best_single.mat in
  let det_infid = mixed_infidelity ~target 1.0 best_single.mat best_single.mat in
  (* One PTM per distinct candidate (and one for the target), shared by
     every pair's golden-section search. *)
  let ru = Ptm.of_mat2 target in
  let with_ptm = List.map (fun c -> (c, Ptm.of_mat2 c.mat)) distinct in
  let best = ref None in
  List.iteri
    (fun i (c1, r1) ->
      List.iteri
        (fun j (c2, r2) ->
          if j > i then begin
            let p, dist = optimize_p_ptm ru r1 r2 in
            match !best with
            | Some (_, _, _, bd) when bd <= dist -> ()
            | _ -> best := Some (c1, c2, p, dist)
          end)
        with_ptm)
    with_ptm;
  match !best with
  | Some (first, second, p, norm_distance) when norm_distance < det_norm ->
      {
        first;
        second;
        p;
        norm_distance;
        deterministic_norm_distance = det_norm;
        process_infidelity = mixed_infidelity ~target p first.mat second.mat;
        deterministic_infidelity = det_infid;
      }
  | _ ->
      {
        first = best_single;
        second = best_single;
        p = 1.0;
        norm_distance = det_norm;
        deterministic_norm_distance = det_norm;
        process_infidelity = det_infid;
        deterministic_infidelity = det_infid;
      }
