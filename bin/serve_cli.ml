(* Long-running batch synthesis server: line-delimited JSON requests on
   stdin (or a Unix-domain socket), one JSON response line per request
   on stdout (or the socket).  Misses run through the Synth registry
   with retry/backoff; the persistent store serves hits and absorbs
   fresh words; SIGTERM/SIGINT (and EOF, and the shutdown op) drain
   in-flight work and write a final index snapshot, so the next start
   is warm.

   dune exec bin/serve_cli.exe -- --store /tmp/tgates-store <requests.jsonl

   Protocol and durability semantics: lib/pipeline/server.mli.
   All diagnostics go to stderr; stdout carries only responses. *)

open Cmdliner

let stop_requested = Atomic.make false

(* Feed fd's lines to the engine, polling the stop flag between reads
   so a signal interrupts an idle server within ~100 ms.  A shutdown op
   raises the stop flag too, so in socket mode the accept loop exits
   instead of waiting for the next client. *)
let pump_lines fd server =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let submit line =
    if Server.submit_line server line = `Stop then begin
      Atomic.set stop_requested true;
      true
    end
    else false
  in
  let rec loop () =
    if Atomic.get stop_requested then ()
    else
      match Unix.select [ fd ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | 0 ->
              (* EOF; a final unterminated line still counts. *)
              if Buffer.length buf > 0 then ignore (submit (Buffer.contents buf))
          | n ->
              let stopped = ref false in
              for i = 0 to n - 1 do
                match Bytes.get chunk i with
                | '\n' ->
                    let line = Buffer.contents buf in
                    Buffer.clear buf;
                    if not !stopped then stopped := submit line
                | c -> Buffer.add_char buf c
              done;
              if not !stopped then loop ())
  in
  loop ()

(* stdin/stdout transport: the process's whole life is one client. *)
let serve_stdio make_server =
  let emit_mutex = Mutex.create () in
  let emit s =
    Mutex.lock emit_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_mutex)
      (fun () ->
        print_string s;
        print_newline ();
        flush stdout)
  in
  let server = make_server emit in
  pump_lines Unix.stdin server;
  server

(* Unix-domain socket transport: one client at a time, each
   disconnection loops back to accept.  The server engine (and its
   queue and store) outlives individual clients. *)
let serve_socket path make_server =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "serve: listening on %s\n%!" path;
  let client : Unix.file_descr option ref = ref None in
  let client_mutex = Mutex.create () in
  let emit s =
    Mutex.lock client_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock client_mutex)
      (fun () ->
        match !client with
        | Some fd -> (
            let line = s ^ "\n" in
            try ignore (Unix.write_substring fd line 0 (String.length line))
            with Unix.Unix_error _ -> ())
        | None -> ())
  in
  let server = make_server emit in
  let rec accept_loop () =
    if not (Atomic.get stop_requested) then begin
      match Unix.select [ sock ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ ->
          let fd, _ = Unix.accept sock in
          Mutex.lock client_mutex;
          client := Some fd;
          Mutex.unlock client_mutex;
          pump_lines fd server;
          Mutex.lock client_mutex;
          client := None;
          Mutex.unlock client_mutex;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    accept_loop;
  server

let run store_dir rescan socket epsilon gate_set gateset_files tables backend_chain workers
    queue_limit max_retries backoff_base backoff_cap request_deadline planner_jobs seed faults
    ledger_out metrics_out metrics_interval prom_out trace_out =
  match
    Robust.guarded @@ fun () ->
    (match trace_out with Some p -> Obs.trace_to_file p | None -> ());
    List.iter
      (fun path ->
        match Gateset.load_file path with
        | Ok gs -> Printf.eprintf "serve: gate set %s loaded from %s\n%!" gs.Gateset.name path
        | Error e -> invalid_arg (Printf.sprintf "--gate-set-file %s: %s" path e))
      gateset_files;
    List.iter
      (fun path ->
        match Tablegen.load_and_provide path with
        | Ok (gs, table) ->
            Printf.eprintf "serve: table %s provided for gate set %s (max_t %d)\n%!" path gs
              table.Ma_table.max_t
        | Error e -> invalid_arg (Printf.sprintf "--load-table %s: %s" path e))
      tables;
    let gate_set =
      match Gateset.find gate_set with
      | Some gs -> gs
      | None ->
          invalid_arg
            (Printf.sprintf "--gate-set: unknown gate set %S (known: %s)" gate_set
               (String.concat ", " (Gateset.names ())))
    in
    (match faults with
    | None -> ()
    | Some s -> (
        match Robust.Fault.parse s with
        | Error e -> invalid_arg ("--faults: " ^ e)
        | Ok (fseed, specs) -> Robust.Fault.configure ?seed:fseed specs));
    (match ledger_out with Some p -> Ledger.to_file p | None -> ());
    (match (metrics_out, prom_out) with
    | None, None -> ()
    | stream, prom -> Metrics.start ?interval:metrics_interval ?stream ?prom ());
    let chain =
      match backend_chain with
      | None -> Server.default_config.Server.chain
      | Some s -> (
          match Synth.parse_chain s with
          | Ok c -> c
          | Error e -> invalid_arg ("--backend-chain: " ^ e))
    in
    let store =
      match store_dir with
      | None -> None
      | Some d -> (
          match Store.open_store ~rescan d with
          | Error e -> invalid_arg ("--store: " ^ e)
          | Ok st ->
              let r = Store.recovery st in
              Printf.eprintf
                "serve: store %s — %d entries (%d segments trusted, %d scanned; %d records \
                 recovered, %d quarantined, %d torn tails)\n\
                 %!"
                d (Store.size st) r.Store.segments_trusted r.Store.segments_scanned
                r.Store.records_recovered r.Store.records_quarantined r.Store.torn_tails;
              Synth.set_store (Some st);
              Some st)
    in
    let cfg =
      {
        Server.epsilon;
        gate_set;
        chain;
        workers;
        queue_limit;
        max_retries;
        backoff_base_s = backoff_base;
        backoff_cap_s = backoff_cap;
        request_deadline_s = request_deadline;
        planner_jobs;
        seed;
      }
    in
    (* Drain on SIGTERM/SIGINT rather than dying mid-request. *)
    let arm signal =
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    arm Sys.sigterm;
    arm Sys.sigint;
    let make_server emit =
      let server = Server.create ?store ~emit cfg in
      (* Structured one-line startup banner: everything an operator (or
         a log scraper) needs to find and correlate this boot. *)
      let open Obs.Json in
      let opt_str = function Some s -> Str s | None -> Null in
      Printf.eprintf "serve: %s\n%!"
        (to_string
           (Obj
              [
                ("ev", Str "serve.start");
                ("pid", Num (float_of_int (Unix.getpid ())));
                ("trace_id", Str (Server.trace_id server));
                ("store", opt_str store_dir);
                ("socket", (match socket with Some p -> Str p | None -> Str "stdio"));
                ("workers", Num (float_of_int (max 1 workers)));
                ( "jobs",
                  match planner_jobs with Some j -> Num (float_of_int j) | None -> Str "auto" );
                ("queue_limit", Num (float_of_int (max 1 queue_limit)));
                ("epsilon", Num epsilon);
                ("gate_set", Str gate_set.Gateset.name);
              ]));
      server
    in
    let server =
      match socket with
      | None -> serve_stdio make_server
      | Some path -> serve_socket path make_server
    in
    Server.drain server;
    Synth.set_store None;
    (match store with
    | Some st ->
        Store.close st;
        Printf.eprintf "serve: store closed with %d entries\n%!" (Store.size st)
    | None -> ());
    (* Drain report: uptime plus request totals, from the same snapshot
       the stats op serves. *)
    let stats = Server.stats_json server in
    let n k = match Obs.Json.member k stats with Some (Obs.Json.Num f) -> f | _ -> 0.0 in
    Printf.eprintf
      "serve: drained after uptime_s=%.3f — %.0f requests (%.0f served, %.0f failed, %.0f shed, \
       %.0f retries), exiting\n\
       %!"
      (Server.uptime_s server) (n "requests") (n "served") (n "failed") (n "shed") (n "retries")
  with
  | Ok () -> 0
  | Error msg ->
      prerr_endline msg;
      1

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"persistent synthesis store directory (created if needed); hits are served without \
              synthesis, fresh words are written back, and shutdown snapshots the index for a \
              warm restart")

let rescan =
  Arg.(
    value & flag
    & info [ "rescan" ]
        ~doc:"ignore the store's index snapshot and CRC-rescan every segment at open")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"serve a Unix-domain socket at $(docv) instead of stdin/stdout (one client at a \
              time)")

let epsilon =
  Arg.(value & opt float 0.07 & info [ "epsilon" ] ~doc:"default per-rotation error threshold")

let gate_set =
  Arg.(
    value & opt string "cliffordt"
    & info [ "gate-set" ] ~docv:"NAME"
        ~doc:"default gate set for requests that omit gate_set (a built-in name or one loaded \
              with --gate-set-file)")

let gateset_files =
  Arg.(
    value
    & opt_all string []
    & info [ "gate-set-file" ] ~docv:"FILE"
        ~doc:"register a gate-set descriptor from a JSON config file (repeatable)")

let tables =
  Arg.(
    value
    & opt_all string []
    & info [ "load-table" ] ~docv:"FILE"
        ~doc:"load a tgates-table/v1 file generated by tgates-tablegen and provide it to the \
              synthesis stack under its gate-set name (repeatable)")

let backend_chain =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend-chain" ] ~docv:"NAMES"
        ~doc:"fallback chain for misses, e.g. 'trasyn,gridsynth,sk' (default: the standard Rz \
              ladder)")

let workers =
  Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc:"worker threads consuming the queue")

let queue_limit =
  Arg.(
    value & opt int 64
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:"bounded admission queue size; further requests are shed with an 'overloaded' \
              response")

let max_retries =
  Arg.(
    value & opt int 3
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"retry budget for transient failures (backend errors, rung timeouts)")

let backoff_base =
  Arg.(
    value & opt float 0.05
    & info [ "backoff-base" ] ~docv:"SECONDS" ~doc:"first retry backoff; doubles per retry")

let backoff_cap =
  Arg.(value & opt float 1.0 & info [ "backoff-cap" ] ~docv:"SECONDS" ~doc:"backoff ceiling")

let request_deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-deadline" ] ~docv:"SECONDS"
        ~doc:"default per-request wall-clock budget (requests may override with deadline_s)")

let planner_jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N" ~doc:"planner worker domains for batch requests")

let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"jitter RNG seed (deterministic backoff)")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:"inject deterministic faults (TGATES_FAULTS grammar), e.g. \
              'store.append=torn,seed=7'")

let ledger_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"append one tgates-ledger/v1 provenance record per served rotation to $(docv)")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"stream live tgates-metrics/v1 snapshots (JSONL) to $(docv)")

let metrics_interval =
  Arg.(
    value
    & opt (some float) None
    & info [ "metrics-interval" ] ~docv:"SECONDS" ~doc:"sampler interval (default 0.25)")

let prom_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom-out" ] ~docv:"FILE"
        ~doc:"write a Prometheus text exposition, atomically replaced per tick")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write a JSONL span trace to $(docv); spans carry req.trace/req.id attributes, so \
              'tgates-trace requests' reassembles per-request waterfalls")

let cmd =
  Cmd.v
    (Cmd.info "tgates-serve"
       ~doc:"Durable batch synthesis server over the persistent store (line-delimited JSON)")
    Term.(
      const run $ store_dir $ rescan $ socket $ epsilon $ gate_set $ gateset_files $ tables
      $ backend_chain $ workers $ queue_limit $ max_retries $ backoff_base $ backoff_cap
      $ request_deadline $ planner_jobs $ seed $ faults $ ledger_out $ metrics_out
      $ metrics_interval $ prom_out $ trace_out)

let () = exit (Cmd.eval' cmd)
