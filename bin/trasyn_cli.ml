(* Command-line TRASYN: synthesize U3(θ,φ,λ) into a Clifford+T word,
   routed through the synthesis-backend registry.

   dune exec bin/trasyn_cli.exe -- --theta 0.4 --phi 1.1 --lam -0.7 --epsilon 0.01 *)

open Cmdliner

(* One provenance record for a direct (chainless) backend call; the
   rotation still "exits Synth", it just never went through a ladder. *)
let record_direct ~backend ~target ~eps_req ~wall_s outcome =
  if Ledger.enabled () then
    let base =
      {
        Ledger.target = Synth.target_id target;
        gate_set = "cliffordt";
        chain = backend;
        eps_req;
        rung_eps = eps_req;
        distance = nan;
        backend = "failed";
        fallbacks = 0;
        attempts = 1;
        t_count = 0;
        word_len = 0;
        wall_s;
        degraded = true;
        cached = false;
        source = "fresh";
        ok = false;
        failure = None;
        request_id = "";
      }
    in
    Ledger.record
      (match outcome with
      | Ok (seq, distance, degraded) ->
          {
            base with
            Ledger.distance;
            backend;
            t_count = Ctgate.t_count seq;
            word_len = List.length seq;
            degraded;
            ok = true;
          }
      | Error f -> { base with Ledger.failure = Some (Synth.failure_tag f) })

let run theta phi lam epsilon budget sites samples trace ledger_out =
  match
    Robust.guarded @@ fun () ->
    (match ledger_out with Some p -> Ledger.to_file p | None -> ());
    Obs.with_trace ?file:trace @@ fun () ->
    Obs.span "cli.trasyn" @@ fun () ->
    let target = Synth.Unitary (Mat2.u3 theta phi lam) in
    let budgets = List.init sites (fun _ -> budget) in
    let trasyn = { Trasyn.default_config with table_t = budget; samples } in
    (* No --epsilon means best effort: ε = 0 is never met, so the
       backend burns the full budget and reports the best word seen. *)
    let eps = Option.value epsilon ~default:0.0 in
    let cfg = Synth.config ~trasyn ~budgets ~epsilon:eps () in
    let module B = (val Synth.find_exn "trasyn") in
    let t0 = Obs.Clock.elapsed_s () in
    let result = B.synthesize target cfg in
    let wall_s = Obs.Clock.elapsed_s () -. t0 in
    record_direct ~backend:"trasyn" ~target ~eps_req:eps ~wall_s
      (Result.map
         (fun (seq, d) ->
           (seq, d, match epsilon with Some e -> d > e | None -> false))
         result);
    match result with
    | Error f -> Robust.fail f
    | Ok (seq, distance) -> (
        Printf.printf "sequence : %s\n" (Ctgate.seq_to_string seq);
        Printf.printf "T count  : %d\n" (Ctgate.t_count seq);
        Printf.printf "Cliffords: %d\n" (Ctgate.clifford_count seq);
        Printf.printf "distance : %.4e\n" distance;
        match epsilon with
        | Some e when distance > e ->
            prerr_endline "warning: threshold not met; raise --sites or --budget";
            1
        | _ -> 0)
  with
  | Ok code -> code
  | Error msg ->
      prerr_endline msg;
      1

let theta = Arg.(required & opt (some float) None & info [ "theta" ] ~doc:"U3 theta angle")
let phi = Arg.(value & opt float 0.0 & info [ "phi" ] ~doc:"U3 phi angle")
let lam = Arg.(value & opt float 0.0 & info [ "lam" ] ~doc:"U3 lambda angle")
let epsilon = Arg.(value & opt (some float) None & info [ "epsilon" ] ~doc:"target unitary distance")
let budget = Arg.(value & opt int 8 & info [ "budget" ] ~doc:"T budget per MPS site (table depth)")
let sites = Arg.(value & opt int 3 & info [ "sites" ] ~doc:"maximum number of MPS sites")
let samples = Arg.(value & opt int 1024 & info [ "samples" ] ~doc:"number of sampled sequences (k)")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write an observability trace (spans + metrics, JSONL) to $(docv); the TGATES_TRACE \
              environment variable does the same")

let ledger_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"append a tgates-ledger/v1 provenance record (JSONL) to $(docv); the TGATES_LEDGER \
              environment variable does the same")

let cmd =
  Cmd.v
    (Cmd.info "trasyn" ~doc:"Tensor-network synthesis of single-qubit unitaries over Clifford+T")
    Term.(const run $ theta $ phi $ lam $ epsilon $ budget $ sites $ samples $ trace $ ledger_out)

let () = exit (Cmd.eval' cmd)
