(* Command-line TRASYN: synthesize U3(θ,φ,λ) into a Clifford+T word,
   routed through the synthesis-backend registry.

   dune exec bin/trasyn_cli.exe -- --theta 0.4 --phi 1.1 --lam -0.7 --epsilon 0.01 *)

open Cmdliner

let run theta phi lam epsilon budget sites samples trace =
  match
    Robust.guarded @@ fun () ->
    Obs.with_trace ?file:trace @@ fun () ->
    Obs.span "cli.trasyn" @@ fun () ->
    let target = Synth.Unitary (Mat2.u3 theta phi lam) in
    let budgets = List.init sites (fun _ -> budget) in
    let trasyn = { Trasyn.default_config with table_t = budget; samples } in
    (* No --epsilon means best effort: ε = 0 is never met, so the
       backend burns the full budget and reports the best word seen. *)
    let eps = Option.value epsilon ~default:0.0 in
    let cfg = Synth.config ~trasyn ~budgets ~epsilon:eps () in
    let module B = (val Synth.find_exn "trasyn") in
    match B.synthesize target cfg with
    | Error f -> Robust.fail f
    | Ok (seq, distance) -> (
        Printf.printf "sequence : %s\n" (Ctgate.seq_to_string seq);
        Printf.printf "T count  : %d\n" (Ctgate.t_count seq);
        Printf.printf "Cliffords: %d\n" (Ctgate.clifford_count seq);
        Printf.printf "distance : %.4e\n" distance;
        match epsilon with
        | Some e when distance > e ->
            prerr_endline "warning: threshold not met; raise --sites or --budget";
            1
        | _ -> 0)
  with
  | Ok code -> code
  | Error msg ->
      prerr_endline msg;
      1

let theta = Arg.(required & opt (some float) None & info [ "theta" ] ~doc:"U3 theta angle")
let phi = Arg.(value & opt float 0.0 & info [ "phi" ] ~doc:"U3 phi angle")
let lam = Arg.(value & opt float 0.0 & info [ "lam" ] ~doc:"U3 lambda angle")
let epsilon = Arg.(value & opt (some float) None & info [ "epsilon" ] ~doc:"target unitary distance")
let budget = Arg.(value & opt int 8 & info [ "budget" ] ~doc:"T budget per MPS site (table depth)")
let sites = Arg.(value & opt int 3 & info [ "sites" ] ~doc:"maximum number of MPS sites")
let samples = Arg.(value & opt int 1024 & info [ "samples" ] ~doc:"number of sampled sequences (k)")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write an observability trace (spans + metrics, JSONL) to $(docv); the TGATES_TRACE \
              environment variable does the same")

let cmd =
  Cmd.v
    (Cmd.info "trasyn" ~doc:"Tensor-network synthesis of single-qubit unitaries over Clifford+T")
    Term.(const run $ theta $ phi $ lam $ epsilon $ budget $ sites $ samples $ trace)

let () = exit (Cmd.eval' cmd)
