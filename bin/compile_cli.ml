(* Whole-circuit FT compiler: read an OpenQASM 2.0 file, transpile +
   synthesize every rotation into Clifford+T through the chosen
   workflow, and write the result back as QASM with a resource report.

   dune exec bin/compile_cli.exe -- --input circuit.qasm --workflow trasyn \
       --epsilon 0.05 --output out.qasm

   Synthesis is hardened: every word is re-verified before entering the
   circuit, failing backends fall back down a ladder (TRASYN → retry →
   GRIDSYNTH → Solovay–Kitaev), and --deadline/--rotation-deadline bound
   the run on the monotonic clock.  --faults (or the TGATES_FAULTS
   environment variable) injects deterministic faults for testing; any
   rotation that needed a fallback or overshot its threshold is listed
   in the degradation report. *)

open Cmdliner

(* How many degraded rotations to itemize before summarizing. *)
let max_degraded_lines = 10

let report_degraded (ds : Pipeline.degradation list) =
  if ds <> [] then begin
    let counts = Hashtbl.create 8 in
    List.iter
      (fun (d : Pipeline.degradation) ->
        Hashtbl.replace counts d.Pipeline.backend
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts d.Pipeline.backend)))
      ds;
    let by_backend =
      Hashtbl.fold (fun b n acc -> Printf.sprintf "%s=%d" b n :: acc) counts []
      |> List.sort compare |> String.concat ", "
    in
    Printf.printf "degraded : %d rotations needed a fallback or overshot (%s)\n" (List.length ds)
      by_backend;
    List.iteri
      (fun i (d : Pipeline.degradation) ->
        if i < max_degraded_lines then
          Printf.printf "  %s -> %s after %d fallbacks, achieved %.3g (requested %.3g)\n"
            d.Pipeline.gate d.Pipeline.backend d.Pipeline.fallbacks d.Pipeline.achieved
            d.Pipeline.requested)
      ds;
    if List.length ds > max_degraded_lines then
      Printf.printf "  ... and %d more\n" (List.length ds - max_degraded_lines)
  end

(* Streaming mode: incremental parse → windowed optimization → planned
   synthesis with backpressure → in-order QASM emission, never holding
   the circuit in memory.  Prints machine-parseable [gates/sec :] and
   [peak heap:] lines that the perf suite and the heap smoke test parse. *)
let run_stream ~input ~output ~workflow ~epsilon ~gate_set ~window ~queue ~deadline
    ~rotation_budget ~jobs ~chain =
  let ir =
    match workflow with
    | "gridsynth" -> Settings.Rz_ir
    | "trasyn" -> Settings.U3_ir
    | "compare" -> invalid_arg "--stream: workflow compare needs the whole circuit in memory"
    | w -> invalid_arg ("unknown workflow " ^ w ^ " (with --stream use trasyn | gridsynth)")
  in
  let jobs = match jobs with Some j -> j | None -> Domain.recommended_domain_count () in
  let cfg =
    Stream_compile.config ~epsilon ~gate_set ~ir ~window ~queue ~jobs ~deadline ?rotation_budget
      ?chain ()
  in
  let ic = open_in input in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let reader = Qasm_reader.stream_of_channel ~file:input ic in
  let oc = Option.map open_out output in
  Fun.protect ~finally:(fun () -> match oc with Some oc -> close_out oc | None -> ())
  @@ fun () ->
  let emit i = match oc with Some oc -> Qasm.write_instr oc i | None -> () in
  let on_qreg n =
    Printf.printf "input    : %d qubits (streaming, window %d, queue %d, %d jobs)\n%!" n window
      queue jobs;
    match oc with Some oc -> Qasm.write_header oc n | None -> ()
  in
  let t0 = Obs.Clock.elapsed_s () in
  match Stream_compile.run_qasm cfg reader ~on_qreg ~emit with
  | Error f -> Robust.fail f
  | Ok st ->
      let dt = Obs.Clock.elapsed_s () -. t0 in
      let rate = if dt > 0.0 then float_of_int st.Stream_compile.gates_in /. dt else 0.0 in
      Printf.printf "output   : %d gates in -> %d gates out, T=%d, Cliffords=%d\n"
        st.Stream_compile.gates_in st.Stream_compile.gates_out st.Stream_compile.t_count
        st.Stream_compile.clifford_count;
      Printf.printf "synth    : %d rotations (%d unique, %d dedup hits), err %.4f, %d degraded\n"
        st.Stream_compile.rotations_synthesized st.Stream_compile.unique_syntheses
        st.Stream_compile.dedup_hits st.Stream_compile.total_synth_error
        st.Stream_compile.degraded;
      Printf.printf "gates/sec: %.1f\n" rate;
      Printf.printf "backpressure: %d producer waits\n" st.Stream_compile.backpressure_waits;
      Printf.printf "peak heap: %d words\n" st.Stream_compile.peak_heap_words;
      (match output with Some path -> Printf.printf "wrote    : %s\n" path | None -> ())

let run input output workflow epsilon gate_set gateset_files tables optimize estimate trace
    metrics_out metrics_interval prom_out ledger_out deadline rotation_deadline faults jobs
    backend_chain store_dir stream window queue =
  match
    Robust.guarded @@ fun () ->
    List.iter
      (fun path ->
        match Gateset.load_file path with
        | Ok gs -> Printf.printf "gate set : %s loaded from %s\n" gs.Gateset.name path
        | Error e -> invalid_arg (Printf.sprintf "--gate-set-file %s: %s" path e))
      gateset_files;
    List.iter
      (fun path ->
        match Tablegen.load_and_provide path with
        | Ok (gs, table) ->
            Printf.printf "table    : %s provided for gate set %s (max_t %d, %d entries)\n" path gs
              table.Ma_table.max_t
              (Array.length table.Ma_table.entries)
        | Error e -> invalid_arg (Printf.sprintf "--load-table %s: %s" path e))
      tables;
    let gate_set =
      match Gateset.find gate_set with
      | Some gs -> gs
      | None ->
          invalid_arg
            (Printf.sprintf "--gate-set: unknown gate set %S (known: %s)" gate_set
               (String.concat ", " (Gateset.names ())))
    in
    (match faults with
    | None -> ()
    | Some s -> (
        match Robust.Fault.parse s with
        | Error e -> invalid_arg ("--faults: " ^ e)
        | Ok (seed, specs) -> Robust.Fault.configure ?seed specs));
    let chain =
      match backend_chain with
      | None -> None
      | Some s -> (
          match Synth.parse_chain s with
          | Ok c -> Some c
          | Error e -> invalid_arg ("--backend-chain: " ^ e))
    in
    (* Arm the provenance ledger and the live sampler before any
       synthesis runs; both flush themselves at_exit. *)
    (match ledger_out with Some p -> Ledger.to_file p | None -> ());
    (* Arm the persistent store: hits skip synthesis entirely, fresh
       words are written back, and close writes the index snapshot. *)
    (match store_dir with
    | None -> ()
    | Some d -> (
        match Store.open_store d with
        | Ok st ->
            let r = Store.recovery st in
            if r.Store.records_recovered + r.Store.records_quarantined + r.Store.torn_tails > 0 then
              Printf.printf "store    : %s — %d records recovered, %d quarantined, %d torn tails\n"
                d r.Store.records_recovered r.Store.records_quarantined r.Store.torn_tails;
            Synth.set_store (Some st);
            at_exit (fun () -> Store.close st)
        | Error e -> invalid_arg ("--store: " ^ e)));
    (match (metrics_out, prom_out) with
    | None, None -> ()
    | stream, prom -> Metrics.start ?interval:metrics_interval ?stream ?prom ());
    Obs.with_trace ?file:trace @@ fun () ->
    (* One root span over the whole compilation, so trace analysis (and
       the hotspots self-time accounting) sees a single-rooted tree. *)
    Obs.span "cli.compile" @@ fun () ->
    let deadline =
      match deadline with None -> Obs.Deadline.none | Some s -> Obs.Deadline.after s
    in
    let rotation_budget = rotation_deadline in
    if stream then begin
      if optimize then
        invalid_arg "--stream: --optimize is whole-circuit; windowed optimization is built in";
      if estimate then
        invalid_arg "--stream: --estimate needs the whole circuit; run it on the written output";
      run_stream ~input ~output ~workflow ~epsilon ~gate_set ~window ~queue ~deadline
        ~rotation_budget ~jobs ~chain
    end
    else begin
    let circuit = Qasm_reader.of_file input in
    Printf.printf "input    : %d qubits, %d gates, %d nontrivial rotations\n"
      circuit.Circuit.n_qubits (Circuit.length circuit)
      (Circuit.nontrivial_rotation_count circuit);
    let synthesized =
      match workflow with
      | "trasyn" ->
          Pipeline.run_trasyn ~epsilon ~gate_set ~deadline ?rotation_budget ?jobs ?chain circuit
      | "gridsynth" ->
          Pipeline.run_gridsynth ~epsilon ~gate_set ~deadline ?rotation_budget ?jobs ?chain circuit
      | "compare" ->
          (* Run both workflows (the paper's RQ2-RQ4 comparison), report
             the ratios, and continue with the TRASYN output. *)
          let cmp =
            Pipeline.compare_workflows ~epsilon ~gate_set ~deadline ?rotation_budget ?jobs ?chain
              ~name:(Filename.basename input) circuit
          in
          Printf.printf "compare  : T ratio=%.2f  Tdepth ratio=%.2f  Clifford ratio=%.2f (gridsynth/trasyn)\n"
            cmp.Pipeline.t_ratio cmp.Pipeline.t_depth_ratio cmp.Pipeline.clifford_ratio;
          cmp.Pipeline.trasyn
      | w -> invalid_arg ("unknown workflow " ^ w ^ " (use trasyn | gridsynth | compare)")
    in
    let compiled =
      if optimize then Cnot_resynth.run (Phase_folding.run synthesized.Pipeline.circuit)
      else synthesized.Pipeline.circuit
    in
    Printf.printf "setting  : %s\n" (Settings.setting_to_string synthesized.Pipeline.setting);
    Printf.printf "output   : %d gates, T=%d, Tdepth=%d, Cliffords=%d\n" (Circuit.length compiled)
      (Circuit.t_count compiled) (Circuit.t_depth compiled) (Circuit.clifford_count compiled);
    Printf.printf "synth err: %.4f summed over %d rotations\n"
      synthesized.Pipeline.total_synth_error synthesized.Pipeline.rotations_synthesized;
    report_degraded synthesized.Pipeline.degraded;
    (match Ledger.path () with
    | Some p ->
        Printf.printf "ledger   : %d records -> %s\n"
          (Obs.counter_value (Obs.counter "obs.ledger.records"))
          p
    | None -> ());
    if estimate then begin
      let e = Surface_code.estimate compiled in
      Format.printf "resources: %a@." Surface_code.pp e
    end;
    match output with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Qasm.to_string compiled);
        close_out oc;
        Printf.printf "wrote    : %s\n" path
    end
  with
  | Ok () -> 0
  | Error msg ->
      prerr_endline msg;
      1

let input =
  Arg.(required & opt (some file) None & info [ "input"; "i" ] ~doc:"input OpenQASM 2.0 file")

let output = Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"output QASM path")

let workflow =
  Arg.(value & opt string "trasyn" & info [ "workflow"; "w" ] ~doc:"trasyn | gridsynth | compare")

let epsilon = Arg.(value & opt float 0.07 & info [ "epsilon" ] ~doc:"per-rotation error threshold")

let gate_set =
  Arg.(
    value & opt string "cliffordt"
    & info [ "gate-set" ] ~docv:"NAME"
        ~doc:"target gate set: a built-in name or one loaded with --gate-set-file; non-built-in \
              sets need a table loaded with --load-table")

let gateset_files =
  Arg.(
    value
    & opt_all string []
    & info [ "gate-set-file" ] ~docv:"FILE"
        ~doc:"register a gate-set descriptor from a JSON config file (repeatable)")

let tables =
  Arg.(
    value
    & opt_all string []
    & info [ "load-table" ] ~docv:"FILE"
        ~doc:"load a tgates-table/v1 file generated by tgates-tablegen and provide it to the \
              synthesis stack under its gate-set name (repeatable)")
let optimize = Arg.(value & flag & info [ "optimize" ] ~doc:"run phase folding afterwards")
let estimate = Arg.(value & flag & info [ "estimate" ] ~doc:"print a surface-code resource estimate")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write an observability trace (spans + metrics, JSONL) to $(docv); the TGATES_TRACE \
              environment variable does the same")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"stream live tgates-metrics/v1 snapshots (JSONL) to $(docv) from a background \
              sampler; the TGATES_METRICS environment variable does the same")

let metrics_interval =
  Arg.(
    value
    & opt (some float) None
    & info [ "metrics-interval" ] ~docv:"SECONDS"
        ~doc:"sampler interval for --metrics-out / --prom-out (default 0.25)")

let prom_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom-out" ] ~docv:"FILE"
        ~doc:"write a Prometheus text exposition of every metric to $(docv), atomically \
              replaced on each sampler tick")

let ledger_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"append one tgates-ledger/v1 provenance record (JSONL) per synthesized rotation \
              to $(docv); the TGATES_LEDGER environment variable does the same")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"whole-run wall-clock budget; expiry aborts with a structured timeout")

let rotation_deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "rotation-deadline" ] ~docv:"SECONDS"
        ~doc:"per-rotation wall-clock budget, additionally capped by --deadline")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:"inject deterministic faults, e.g. 'trasyn=fail' or '*=corrupt\\@0.25,seed=7'; \
              same grammar as the TGATES_FAULTS environment variable")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"planner worker domains for rotation synthesis (default: the runtime's recommended \
              domain count); output is bit-identical whatever the value")

let backend_chain =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend-chain" ] ~docv:"NAMES"
        ~doc:"comma-separated synthesis fallback chain built from the backend registry, e.g. \
              'trasyn,gridsynth,sk'; default: the workflow's standard ladder")

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:"persistent synthesis store directory (created if needed): stored words with \
              verified distance <= epsilon are served without synthesis, and fresh words are \
              written back for the next run")

let stream =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:"streaming compilation: parse, optimize over a sliding window, synthesize and emit \
              incrementally with bounded memory — the input never lives in memory as a whole; \
              output is bit-identical to the in-memory path at any --jobs")

let window =
  Arg.(
    value & opt int 64
    & info [ "window" ] ~docv:"N"
        ~doc:"sliding-window size for streaming merge/commute/phase-fold optimization (with \
              --stream; default 64)")

let queue =
  Arg.(
    value & opt int 32
    & info [ "queue" ] ~docv:"N"
        ~doc:"planner job-queue capacity in streaming mode — a full queue blocks the parser \
              (backpressure; default 32)")

let cmd =
  Cmd.v
    (Cmd.info "ftcompile" ~doc:"Compile a circuit to Clifford+T via the TRASYN or GRIDSYNTH workflow")
    Term.(
      const run $ input $ output $ workflow $ epsilon $ gate_set $ gateset_files $ tables
      $ optimize $ estimate $ trace $ metrics_out $ metrics_interval $ prom_out $ ledger_out
      $ deadline $ rotation_deadline $ faults $ jobs $ backend_chain $ store_dir $ stream
      $ window $ queue)

let () = exit (Cmd.eval' cmd)
