(* Whole-circuit FT compiler: read an OpenQASM 2.0 file, transpile +
   synthesize every rotation into Clifford+T through the chosen
   workflow, and write the result back as QASM with a resource report.

   dune exec bin/compile_cli.exe -- --input circuit.qasm --workflow trasyn \
       --epsilon 0.05 --output out.qasm *)

open Cmdliner

let run input output workflow epsilon optimize estimate trace =
  Obs.with_trace ?file:trace @@ fun () ->
  let circuit = Qasm_reader.of_file input in
  Printf.printf "input    : %d qubits, %d gates, %d nontrivial rotations\n"
    circuit.Circuit.n_qubits (Circuit.length circuit)
    (Circuit.nontrivial_rotation_count circuit);
  let synthesized =
    match workflow with
    | "trasyn" -> Pipeline.run_trasyn ~epsilon circuit
    | "gridsynth" -> Pipeline.run_gridsynth ~epsilon circuit
    | "compare" ->
        (* Run both workflows (the paper's RQ2-RQ4 comparison), report
           the ratios, and continue with the TRASYN output. *)
        let cmp = Pipeline.compare_workflows ~epsilon ~name:(Filename.basename input) circuit in
        Printf.printf "compare  : T ratio=%.2f  Tdepth ratio=%.2f  Clifford ratio=%.2f (gridsynth/trasyn)\n"
          cmp.Pipeline.t_ratio cmp.Pipeline.t_depth_ratio cmp.Pipeline.clifford_ratio;
        cmp.Pipeline.trasyn
    | w ->
        prerr_endline ("unknown workflow " ^ w ^ " (use trasyn | gridsynth | compare)");
        exit 2
  in
  let compiled =
    if optimize then Cnot_resynth.run (Phase_folding.run synthesized.Pipeline.circuit)
    else synthesized.Pipeline.circuit
  in
  Printf.printf "setting  : %s\n" (Settings.setting_to_string synthesized.Pipeline.setting);
  Printf.printf "output   : %d gates, T=%d, Tdepth=%d, Cliffords=%d\n" (Circuit.length compiled)
    (Circuit.t_count compiled) (Circuit.t_depth compiled) (Circuit.clifford_count compiled);
  Printf.printf "synth err: %.4f summed over %d rotations\n"
    synthesized.Pipeline.total_synth_error synthesized.Pipeline.rotations_synthesized;
  if estimate then begin
    let e = Surface_code.estimate compiled in
    Format.printf "resources: %a@." Surface_code.pp e
  end;
  match output with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Qasm.to_string compiled);
      close_out oc;
      Printf.printf "wrote    : %s\n" path

let input =
  Arg.(required & opt (some file) None & info [ "input"; "i" ] ~doc:"input OpenQASM 2.0 file")

let output = Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"output QASM path")

let workflow =
  Arg.(value & opt string "trasyn" & info [ "workflow"; "w" ] ~doc:"trasyn | gridsynth | compare")

let epsilon = Arg.(value & opt float 0.07 & info [ "epsilon" ] ~doc:"per-rotation error threshold")
let optimize = Arg.(value & flag & info [ "optimize" ] ~doc:"run phase folding afterwards")
let estimate = Arg.(value & flag & info [ "estimate" ] ~doc:"print a surface-code resource estimate")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write an observability trace (spans + metrics, JSONL) to $(docv); the TGATES_TRACE \
              environment variable does the same")

let cmd =
  Cmd.v
    (Cmd.info "ftcompile" ~doc:"Compile a circuit to Clifford+T via the TRASYN or GRIDSYNTH workflow")
    Term.(const run $ input $ output $ workflow $ epsilon $ optimize $ estimate $ trace)

let () = exit (Cmd.eval cmd)
