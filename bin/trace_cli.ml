(* tgates-trace: turn Obs JSONL traces (and tgates-bench/v1 BENCH_*.json
   baselines) into decisions.

     dune exec bin/trace_cli.exe -- report trace.jsonl
     dune exec bin/trace_cli.exe -- hotspots --top 15 trace.jsonl
     dune exec bin/trace_cli.exe -- flame trace.jsonl | flamegraph.pl > out.svg
     dune exec bin/trace_cli.exe -- diff --fail-above 10 BENCH_0.json BENCH_1.json
     dune exec bin/trace_cli.exe -- validate BENCH_0.json

   Exit codes: 0 ok; 1 unreadable/malformed input, invalid bench JSON,
   or (for diff with --fail-above) a regression beyond the threshold. *)

open Cmdliner

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("tgates-trace: " ^ s); 1) fmt

let with_trace path k =
  match Trace_analysis.load path with Error e -> fail "%s" e | Ok tr -> k tr

let report_cmd =
  let run path = with_trace path (fun tr -> Trace_analysis.render_report Format.std_formatter tr; 0) in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "report" ~doc:"per-metric table (counters, gauges, histogram summaries) of a trace")
    Term.(const run $ path)

let hotspots_cmd =
  let run top path =
    with_trace path (fun tr ->
        Trace_analysis.render_hotspots ?top Format.std_formatter tr;
        0)
  in
  let top =
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"K" ~doc:"show only the top $(docv) spans")
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:
         "spans ranked by self-time (time not attributed to child spans), with inclusive time and \
          minor-heap allocation; the self-times sum to the run's wall time")
    Term.(const run $ top $ path)

let flame_cmd =
  let run path = with_trace path (fun tr -> Trace_analysis.render_flame Format.std_formatter tr; 0) in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "folded-stacks output (span path, self-time in microseconds) for flamegraph.pl")
    Term.(const run $ path)

let diff_cmd =
  let run fail_above before after =
    match Trace_analysis.load_source before, Trace_analysis.load_source after with
    | Error e, _ | _, Error e -> fail "%s" e
    | Ok b, Ok a ->
        (* Name the inputs: BENCH_<n>.json vs BENCH_<n>_rerun.json mixups
           are invisible once the numbers are on screen. *)
        Format.printf "diff: before=%s after=%s@." before after;
        let deltas = Trace_analysis.diff ~before:b ~after:a in
        Trace_analysis.render_diff ?fail_above Format.std_formatter deltas;
        (match fail_above with
        | Some pct when Trace_analysis.regressions ~fail_above:pct deltas <> [] -> 1
        | _ -> 0)
  in
  let fail_above =
    Arg.(
      value
      & opt (some float) None
      & info [ "fail-above" ] ~docv:"PCT"
          ~doc:
            "exit nonzero when any time/T-count/GC series regressed by more than $(docv) percent \
             — the CI gate")
  in
  let before = Arg.(required & pos 0 (some file) None & info [] ~docv:"BEFORE") in
  let after = Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "compare two runs — JSONL traces or tgates-bench/v1 BENCH_*.json files — series by series")
    Term.(const run $ fail_above $ before $ after)

let validate_cmd =
  let run path =
    match Trace_analysis.load_source path with
    | Error e -> fail "%s" e
    | Ok (Trace_analysis.Trace _) -> fail "%s: not a %s document" path Trace_analysis.bench_schema
    | Ok (Trace_analysis.Bench j) -> (
        match Trace_analysis.validate_bench j with
        | Ok () ->
            Printf.printf "%s: valid %s\n" path Trace_analysis.bench_schema;
            0
        | Error errs ->
            List.iter (fun e -> Printf.eprintf "tgates-trace: %s: %s\n" path e) errs;
            1)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"BENCH_JSON") in
  Cmd.v
    (Cmd.info "validate" ~doc:"check a BENCH_*.json file against the tgates-bench/v1 schema")
    Term.(const run $ path)

let metrics_cmd =
  let run max_overhead require path =
    match Metrics.load_stream path with
    | Error e -> fail "%s" e
    | Ok snaps -> (
        Metrics.render_stream Format.std_formatter snaps;
        let names = Metrics.series_names snaps in
        let missing = List.filter (fun n -> not (List.mem n names)) require in
        if missing <> [] then fail "missing series: %s" (String.concat ", " missing)
        else
          match max_overhead with
          | Some pct when Metrics.overhead_pct snaps > pct ->
              fail "sampler overhead %.3f%% exceeds the %.3f%% gate" (Metrics.overhead_pct snaps)
                pct
          | _ -> 0)
  in
  let max_overhead =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-overhead-pct" ] ~docv:"PCT"
          ~doc:
            "exit nonzero when the sampler's self-time exceeds $(docv) percent of the stream's \
             covered wall time — the CI gate on sampler overhead")
  in
  let require =
    Arg.(
      value
      & opt_all string []
      & info [ "require-series" ] ~docv:"NAME"
          ~doc:"exit nonzero unless the stream carries this series (repeatable)")
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"METRICS_JSONL") in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "validate and render a tgates-metrics/v1 stream: snapshot timeline (rotations/sec, heap, \
          planner utilization), torn/duplicate-line detection, sampler-overhead gating")
    Term.(const run $ max_overhead $ require $ path)

let requests_cmd =
  let run slowest fail_above expect path =
    with_trace path (fun tr ->
        let rs = Trace_analysis.requests tr in
        Trace_analysis.render_requests ~slowest Format.std_formatter tr;
        match expect with
        | Some n when List.length rs <> n ->
            fail "expected %d requests, found %d" n (List.length rs)
        | _ -> (
            match fail_above with
            | None -> 0
            | Some thr -> (
                match
                  List.filter (fun r -> r.Trace_analysis.rq_latency_s > thr) rs
                with
                | [] -> 0
                | over ->
                    List.iter
                      (fun r ->
                        Printf.eprintf "tgates-trace: request %s latency %.6fs exceeds %.6fs\n"
                          r.Trace_analysis.rq_id r.Trace_analysis.rq_latency_s thr)
                      over;
                    1)))
  in
  let slowest =
    Arg.(
      value & opt int 1
      & info [ "slowest" ] ~docv:"K"
          ~doc:"render the span waterfall of the $(docv) highest-latency requests (0 disables)")
  in
  let fail_above =
    Arg.(
      value
      & opt (some float) None
      & info [ "fail-above" ] ~docv:"SECONDS"
          ~doc:"exit nonzero when any request's latency exceeds $(docv) seconds — the CI gate on \
                tail latency")
  in
  let expect =
    Arg.(
      value
      & opt (some int) None
      & info [ "expect-requests" ] ~docv:"N"
          ~doc:"exit nonzero unless the trace carries exactly $(docv) requests")
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "requests"
       ~doc:
         "reassemble a server trace into per-request waterfalls: one latency-table row per wire \
          request (req.trace/req.id span attributes are the grouping key, so spans emitted on \
          planner worker domains fold back under their request), plus the slowest requests' span \
          waterfalls and a tail-latency CI gate")
    Term.(const run $ slowest $ fail_above $ expect $ path)

let ledger_cmd =
  let run expect paths =
    let loaded = List.map (fun p -> (p, Ledger.load p)) paths in
    match List.find_map (function p, Error e -> Some (p, e) | _, Ok _ -> None) loaded with
    | Some (p, e) -> fail "%s: %s" p e
    | None -> (
        let records =
          List.concat_map (function _, Ok rs -> rs | _, Error _ -> []) loaded
        in
        Ledger.render_stats Format.std_formatter records;
        match expect with
        | Some n when List.length records <> n ->
            fail "expected %d records, found %d" n (List.length records)
        | _ -> 0)
  in
  let expect =
    Arg.(
      value
      & opt (some int) None
      & info [ "expect-records" ] ~docv:"N"
          ~doc:
            "exit nonzero unless the ledger(s) hold exactly $(docv) records — the completeness \
             gate (one record per synthesized rotation)")
  in
  let paths = Arg.(non_empty & pos_all file [] & info [] ~docv:"LEDGER_JSONL") in
  Cmd.v
    (Cmd.info "ledger"
       ~doc:
         "aggregate tgates-ledger/v1 provenance files into per-backend T-count/ε distributions; \
          deterministic output (wall-time lines excepted), so --jobs 1 and --jobs N runs compare \
          bit-identically")
    Term.(const run $ expect $ paths)

let cmd =
  Cmd.group
    (Cmd.info "tgates-trace" ~doc:"analyze Obs JSONL traces and BENCH_*.json perf baselines")
    [
      report_cmd; hotspots_cmd; flame_cmd; diff_cmd; validate_cmd; metrics_cmd; requests_cmd;
      ledger_cmd;
    ]

let () = exit (Cmd.eval' cmd)
