(* Command-line GRIDSYNTH: approximate Rz(θ) over Clifford+T, routed
   through the synthesis-backend registry.

   dune exec bin/gridsynth_cli.exe -- --theta 0.61 --epsilon 1e-4 *)

open Cmdliner

(* One provenance record for the direct (chainless) backend call. *)
let record_direct ~target ~eps_req ~wall_s result =
  if Ledger.enabled () then
    let base =
      {
        Ledger.target = Synth.target_id target;
        gate_set = "cliffordt";
        chain = "gridsynth";
        eps_req;
        rung_eps = eps_req;
        distance = nan;
        backend = "failed";
        fallbacks = 0;
        attempts = 1;
        t_count = 0;
        word_len = 0;
        wall_s;
        degraded = true;
        cached = false;
        source = "fresh";
        ok = false;
        failure = None;
        request_id = "";
      }
    in
    Ledger.record
      (match result with
      | Ok (seq, distance) ->
          {
            base with
            Ledger.distance;
            backend = "gridsynth";
            t_count = Ctgate.t_count seq;
            word_len = List.length seq;
            degraded = distance > eps_req;
            ok = true;
          }
      | Error f -> { base with Ledger.failure = Some (Synth.failure_tag f) })

let run theta epsilon trace ledger_out =
  match
    Robust.guarded @@ fun () ->
    (match ledger_out with Some p -> Ledger.to_file p | None -> ());
    Obs.with_trace ?file:trace @@ fun () ->
    Obs.span "cli.gridsynth" @@ fun () ->
    let module B = (val Synth.find_exn "gridsynth") in
    let target = Synth.Rz theta in
    let t0 = Obs.Clock.elapsed_s () in
    let result = B.synthesize target (Synth.config ~epsilon ()) in
    record_direct ~target ~eps_req:epsilon ~wall_s:(Obs.Clock.elapsed_s () -. t0) result;
    match result with
    | Error f -> Robust.fail f
    | Ok (seq, distance) ->
        Printf.printf "sequence : %s\n" (Ctgate.seq_to_string seq);
        Printf.printf "T count  : %d\n" (Ctgate.t_count seq);
        Printf.printf "Cliffords: %d\n" (Ctgate.clifford_count seq);
        Printf.printf "distance : %.4e\n" distance
  with
  | Ok () -> 0
  | Error msg ->
      prerr_endline msg;
      1

let theta = Arg.(required & opt (some float) None & info [ "theta" ] ~doc:"rotation angle")
let epsilon = Arg.(value & opt float 1e-3 & info [ "epsilon" ] ~doc:"target unitary distance")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write an observability trace (spans + metrics, JSONL) to $(docv); the TGATES_TRACE \
              environment variable does the same")

let ledger_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"append a tgates-ledger/v1 provenance record (JSONL) to $(docv); the TGATES_LEDGER \
              environment variable does the same")

let cmd =
  Cmd.v
    (Cmd.info "gridsynth" ~doc:"Ross-Selinger Clifford+T approximation of z-rotations")
    Term.(const run $ theta $ epsilon $ trace $ ledger_out)

let () = exit (Cmd.eval' cmd)
