(* Command-line GRIDSYNTH: approximate Rz(θ) over Clifford+T, routed
   through the synthesis-backend registry.

   dune exec bin/gridsynth_cli.exe -- --theta 0.61 --epsilon 1e-4 *)

open Cmdliner

let run theta epsilon trace =
  match
    Robust.guarded @@ fun () ->
    Obs.with_trace ?file:trace @@ fun () ->
    Obs.span "cli.gridsynth" @@ fun () ->
    let module B = (val Synth.find_exn "gridsynth") in
    match B.synthesize (Synth.Rz theta) (Synth.config ~epsilon ()) with
    | Error f -> Robust.fail f
    | Ok (seq, distance) ->
        Printf.printf "sequence : %s\n" (Ctgate.seq_to_string seq);
        Printf.printf "T count  : %d\n" (Ctgate.t_count seq);
        Printf.printf "Cliffords: %d\n" (Ctgate.clifford_count seq);
        Printf.printf "distance : %.4e\n" distance
  with
  | Ok () -> 0
  | Error msg ->
      prerr_endline msg;
      1

let theta = Arg.(required & opt (some float) None & info [ "theta" ] ~doc:"rotation angle")
let epsilon = Arg.(value & opt float 1e-3 & info [ "epsilon" ] ~doc:"target unitary distance")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write an observability trace (spans + metrics, JSONL) to $(docv); the TGATES_TRACE \
              environment variable does the same")

let cmd =
  Cmd.v
    (Cmd.info "gridsynth" ~doc:"Ross-Selinger Clifford+T approximation of z-rotations")
    Term.(const run $ theta $ epsilon $ trace)

let () = exit (Cmd.eval' cmd)
