(* Offline gate-set table generator: enumerate a gate set's operators
   up to a T-depth, dedupe by canonical exact unitary, verify the count
   against the descriptor's closed form when known, and persist the
   result as a CRC-framed tgates-table/v1 file that the synthesis
   stack loads with --load-table.

   dune exec bin/tablegen_cli.exe -- --gate-set cliffordt --max-t 3 \
       --out cliffordt-t3.table --verify

   --verify reloads the written file and checks the round trip is
   entry-for-entry identical — for built-in Clifford+T that means
   bit-identical to Ma_table.build. *)

open Cmdliner

let entries_equal (a : Ma_table.t) (b : Ma_table.t) =
  a.Ma_table.max_t = b.Ma_table.max_t
  && Array.length a.Ma_table.entries = Array.length b.Ma_table.entries
  && Array.for_all2
       (fun (x : Ma_table.entry) (y : Ma_table.entry) ->
         x.Ma_table.seq = y.Ma_table.seq
         && Exact_u.equal x.Ma_table.u y.Ma_table.u
         && x.Ma_table.tcount = y.Ma_table.tcount
         && x.Ma_table.ccount = y.Ma_table.ccount)
       a.Ma_table.entries b.Ma_table.entries

let run gate_set gateset_files max_t out verify =
  match
    Robust.guarded @@ fun () ->
    List.iter
      (fun path ->
        match Gateset.load_file path with
        | Ok gs -> Printf.printf "gate set : %s loaded from %s\n" gs.Gateset.name path
        | Error e -> invalid_arg (Printf.sprintf "--gate-set-file %s: %s" path e))
      gateset_files;
    let gs =
      match Gateset.find gate_set with
      | Some gs -> gs
      | None ->
          invalid_arg
            (Printf.sprintf "--gate-set: unknown gate set %S (known: %s)" gate_set
               (String.concat ", " (Gateset.names ())))
    in
    if max_t < 0 then invalid_arg "--max-t must be >= 0";
    let t0 = Obs.Clock.elapsed_s () in
    let table =
      match Tablegen.generate gs ~max_t with
      | Ok t -> t
      | Error e -> invalid_arg ("generation failed: " ^ e)
    in
    Printf.printf "generated: %s max_t=%d — %d entries in %.3f s%s\n" gs.Gateset.name max_t
      (Array.length table.Ma_table.entries)
      (Obs.Clock.elapsed_s () -. t0)
      (match gs.Gateset.closed_count with
      | Some f -> Printf.sprintf " (closed form: %d, verified)" (f max_t)
      | None -> "");
    (match Tablegen.save ~path:out ~gate_set:gs.Gateset.name table with
    | Ok () -> Printf.printf "wrote    : %s (%s)\n" out Tablegen.schema
    | Error e -> invalid_arg ("save failed: " ^ e));
    if verify then begin
      match Tablegen.load out with
      | Error e -> invalid_arg ("verify: reload failed: " ^ e)
      | Ok (name, reloaded) ->
          if name <> gs.Gateset.name then
            invalid_arg
              (Printf.sprintf "verify: file names gate set %S, expected %S" name gs.Gateset.name);
          if not (entries_equal table reloaded) then
            invalid_arg "verify: reloaded table differs from the generated one";
          Printf.printf "verified : round trip is entry-for-entry identical\n"
    end
  with
  | Ok () -> 0
  | Error msg ->
      prerr_endline msg;
      1

let gate_set =
  Arg.(
    value & opt string "cliffordt"
    & info [ "gate-set" ] ~docv:"NAME"
        ~doc:"gate set to enumerate: a built-in name or one loaded with --gate-set-file")

let gateset_files =
  Arg.(
    value
    & opt_all string []
    & info [ "gate-set-file" ] ~docv:"FILE"
        ~doc:"register a gate-set descriptor from a JSON config file (repeatable)")

let max_t =
  Arg.(
    value & opt int 3
    & info [ "max-t" ] ~docv:"N" ~doc:"maximum non-Clifford count to enumerate to")

let out =
  Arg.(
    required
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"output tgates-table/v1 path (written atomically)")

let verify =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"reload the written file and check the round trip is entry-for-entry identical")

let cmd =
  Cmd.v
    (Cmd.info "tgates-tablegen"
       ~doc:"Generate a gate-set operator table (tgates-table/v1) for the synthesis stack")
    Term.(const run $ gate_set $ gateset_files $ max_t $ out $ verify)

let () = exit (Cmd.eval' cmd)
